//! Direct 2-D convolution in NCHW layout, forward and backward.
//!
//! The kernels are plain nested loops parallelised with rayon over the batch
//! axis — the FL simulation trains many small models concurrently, so
//! per-sample parallelism composes with per-client parallelism via rayon's
//! work stealing without oversubscription.
//!
//! Since the blocked-kernel rewrite these are the **reference** conv path:
//! `fedcav-nn`'s `Conv2d` uses them under `FEDCAV_KERNELS=reference` and
//! the arena-backed im2col lowering ([`crate::im2col`]) otherwise, and the
//! differential property suite pins the two against each other.

use crate::{Result, Tensor, TensorError};
use rayon::prelude::*;

/// Static configuration of a convolution: stride and symmetric zero padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding added on each side of both spatial axes.
    pub padding: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams { stride: 1, padding: 0 }
    }
}

impl Conv2dParams {
    /// Output spatial extent for an input extent and kernel extent.
    pub fn out_extent(&self, input: usize, kernel: usize) -> Option<usize> {
        let padded = input + 2 * self.padding;
        if padded < kernel || self.stride == 0 {
            return None;
        }
        Some((padded - kernel) / self.stride + 1)
    }
}

fn check_rank4(t: &Tensor, op: &'static str) -> Result<()> {
    if t.dims().len() != 4 {
        return Err(TensorError::InvalidShape {
            op,
            shape: t.dims().to_vec(),
            expected: "rank 4 (NCHW)".to_string(),
        });
    }
    Ok(())
}

/// Forward convolution.
///
/// * `input`:  `[n, in_c, h, w]`
/// * `weight`: `[out_c, in_c, kh, kw]`
/// * `bias`:   `[out_c]`
///
/// Returns `[n, out_c, oh, ow]`.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    params: Conv2dParams,
) -> Result<Tensor> {
    check_rank4(input, "conv2d_forward(input)")?;
    check_rank4(weight, "conv2d_forward(weight)")?;
    let (n, in_c, h, w) = dims4(input);
    let (out_c, w_in_c, kh, kw) = dims4(weight);
    if in_c != w_in_c {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_forward",
            lhs: input.dims().to_vec(),
            rhs: weight.dims().to_vec(),
        });
    }
    if bias.dims() != [out_c] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_forward(bias)",
            lhs: bias.dims().to_vec(),
            rhs: vec![out_c],
        });
    }
    let oh = params.out_extent(h, kh).ok_or_else(|| TensorError::InvalidShape {
        op: "conv2d_forward",
        shape: input.dims().to_vec(),
        expected: format!("spatial >= kernel {kh}x{kw} after padding"),
    })?;
    let ow = params.out_extent(w, kw).ok_or_else(|| TensorError::InvalidShape {
        op: "conv2d_forward",
        shape: input.dims().to_vec(),
        expected: format!("spatial >= kernel {kh}x{kw} after padding"),
    })?;

    let macs = (n * out_c * oh * ow) as u64 * (in_c * kh * kw) as u64;
    crate::counters::record_conv(
        2 * macs,
        4 * (input.numel() + weight.numel() + bias.numel() + n * out_c * oh * ow) as u64,
    );
    let mut out = vec![0.0f32; n * out_c * oh * ow];
    let x = input.as_slice();
    let wt = weight.as_slice();
    let b = bias.as_slice();
    let (stride, pad) = (params.stride, params.padding);

    out.par_chunks_mut(out_c * oh * ow).enumerate().for_each(|(ni, out_img)| {
        let x_img = &x[ni * in_c * h * w..(ni + 1) * in_c * h * w];
        for oc in 0..out_c {
            let w_oc = &wt[oc * in_c * kh * kw..(oc + 1) * in_c * kh * kw];
            let out_plane = &mut out_img[oc * oh * ow..(oc + 1) * oh * ow];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b[oc];
                    for ic in 0..in_c {
                        let x_plane = &x_img[ic * h * w..(ic + 1) * h * w];
                        let w_plane = &w_oc[ic * kh * kw..(ic + 1) * kh * kw];
                        for ky in 0..kh {
                            let iy = oy * stride + ky;
                            if iy < pad || iy - pad >= h {
                                continue;
                            }
                            let iy = iy - pad;
                            let x_row = &x_plane[iy * w..(iy + 1) * w];
                            let w_row = &w_plane[ky * kw..(ky + 1) * kw];
                            for (kx, &wk) in w_row.iter().enumerate() {
                                let ix = ox * stride + kx;
                                if ix < pad || ix - pad >= w {
                                    continue;
                                }
                                acc += x_row[ix - pad] * wk;
                            }
                        }
                    }
                    out_plane[oy * ow + ox] = acc;
                }
            }
        }
    });
    crate::sanitize::check_output("conv2d_forward", &[n, out_c, oh, ow], &out);
    Tensor::from_vec(&[n, out_c, oh, ow], out)
}

/// Gradients produced by the convolution backward pass.
#[derive(Debug)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `[n, in_c, h, w]`.
    pub d_input: Tensor,
    /// Gradient w.r.t. the weights, `[out_c, in_c, kh, kw]`.
    pub d_weight: Tensor,
    /// Gradient w.r.t. the bias, `[out_c]`.
    pub d_bias: Tensor,
}

/// Backward convolution given upstream `d_out = dL/d(output)`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    d_out: &Tensor,
    params: Conv2dParams,
) -> Result<Conv2dGrads> {
    check_rank4(input, "conv2d_backward(input)")?;
    check_rank4(weight, "conv2d_backward(weight)")?;
    check_rank4(d_out, "conv2d_backward(d_out)")?;
    let (n, in_c, h, w) = dims4(input);
    let (out_c, _, kh, kw) = dims4(weight);
    let (dn, doc, oh, ow) = dims4(d_out);
    if dn != n || doc != out_c {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward",
            lhs: d_out.dims().to_vec(),
            rhs: vec![n, out_c],
        });
    }
    let (stride, pad) = (params.stride, params.padding);
    // The d_input and d_weight passes each walk the forward MAC lattice.
    let macs = (n * out_c * oh * ow) as u64 * (in_c * kh * kw) as u64;
    crate::counters::record_conv(
        4 * macs,
        4 * (2 * input.numel() + 2 * weight.numel() + d_out.numel() + out_c) as u64,
    );
    let x = input.as_slice();
    let wt = weight.as_slice();
    let go = d_out.as_slice();

    // d_input: parallel over batch (disjoint per-sample planes).
    let mut d_input = vec![0.0f32; n * in_c * h * w];
    d_input.par_chunks_mut(in_c * h * w).enumerate().for_each(|(ni, dx_img)| {
        let go_img = &go[ni * out_c * oh * ow..(ni + 1) * out_c * oh * ow];
        for oc in 0..out_c {
            let go_plane = &go_img[oc * oh * ow..(oc + 1) * oh * ow];
            let w_oc = &wt[oc * in_c * kh * kw..(oc + 1) * in_c * kh * kw];
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = go_plane[oy * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    for ic in 0..in_c {
                        let dx_plane = &mut dx_img[ic * h * w..(ic + 1) * h * w];
                        let w_plane = &w_oc[ic * kh * kw..(ic + 1) * kh * kw];
                        for ky in 0..kh {
                            let iy = oy * stride + ky;
                            if iy < pad || iy - pad >= h {
                                continue;
                            }
                            let iy = iy - pad;
                            for kx in 0..kw {
                                let ix = ox * stride + kx;
                                if ix < pad || ix - pad >= w {
                                    continue;
                                }
                                dx_plane[iy * w + (ix - pad)] += g * w_plane[ky * kw + kx];
                            }
                        }
                    }
                }
            }
        }
    });

    // d_weight / d_bias: parallel over output channels (disjoint per-oc rows).
    let mut d_weight = vec![0.0f32; out_c * in_c * kh * kw];
    let mut d_bias = vec![0.0f32; out_c];
    d_weight.par_chunks_mut(in_c * kh * kw).zip(d_bias.par_iter_mut()).enumerate().for_each(
        |(oc, (dw_oc, db_oc))| {
            for ni in 0..n {
                let x_img = &x[ni * in_c * h * w..(ni + 1) * in_c * h * w];
                let go_plane = &go[(ni * out_c + oc) * oh * ow..(ni * out_c + oc + 1) * oh * ow];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go_plane[oy * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        *db_oc += g;
                        for ic in 0..in_c {
                            let x_plane = &x_img[ic * h * w..(ic + 1) * h * w];
                            let dw_plane = &mut dw_oc[ic * kh * kw..(ic + 1) * kh * kw];
                            for ky in 0..kh {
                                let iy = oy * stride + ky;
                                if iy < pad || iy - pad >= h {
                                    continue;
                                }
                                let iy = iy - pad;
                                for kx in 0..kw {
                                    let ix = ox * stride + kx;
                                    if ix < pad || ix - pad >= w {
                                        continue;
                                    }
                                    dw_plane[ky * kw + kx] += g * x_plane[iy * w + (ix - pad)];
                                }
                            }
                        }
                    }
                }
            }
        },
    );

    crate::sanitize::check_output("conv2d_backward(d_input)", &[n, in_c, h, w], &d_input);
    crate::sanitize::check_output("conv2d_backward(d_weight)", &[out_c, in_c, kh, kw], &d_weight);
    crate::sanitize::check_output("conv2d_backward(d_bias)", &[out_c], &d_bias);
    Ok(Conv2dGrads {
        d_input: Tensor::from_vec(&[n, in_c, h, w], d_input)?,
        d_weight: Tensor::from_vec(&[out_c, in_c, kh, kw], d_weight)?,
        d_bias: Tensor::from_vec(&[out_c], d_bias)?,
    })
}

fn dims4(t: &Tensor) -> (usize, usize, usize, usize) {
    let d = t.dims();
    (d[0], d[1], d[2], d[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn out_extent_math() {
        let p = Conv2dParams { stride: 1, padding: 0 };
        assert_eq!(p.out_extent(28, 5), Some(24));
        let p = Conv2dParams { stride: 2, padding: 1 };
        assert_eq!(p.out_extent(32, 3), Some(16));
        let p = Conv2dParams { stride: 1, padding: 0 };
        assert_eq!(p.out_extent(2, 5), None);
    }

    #[test]
    fn conv_kernels_record_op_counters() {
        let _guard = crate::counters::TEST_LOCK.lock().unwrap();
        let input = Tensor::ones(&[1, 1, 4, 4]);
        let weight = Tensor::ones(&[2, 1, 3, 3]);
        let bias = Tensor::zeros(&[2]);
        let params = Conv2dParams::default();
        let before = crate::counters::snapshot();
        crate::counters::enable();
        let out = conv2d_forward(&input, &weight, &bias, params).unwrap();
        conv2d_backward(&input, &weight, &out, params).unwrap();
        crate::counters::disable();
        let d = crate::counters::snapshot().delta(&before);
        assert!(d.conv_calls >= 2);
        // Forward MACs = 1·2·2·2 outputs × 1·3·3 taps = 72 → 144 FLOPs;
        // backward records twice the forward count.
        assert!(d.conv_flops >= 144 + 288, "conv flops {}", d.conv_flops);
        assert!(d.bytes_moved > 0);
    }

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 kernel with weight 1, bias 0 == identity.
        let input = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let weight = Tensor::ones(&[1, 1, 1, 1]);
        let bias = Tensor::zeros(&[1]);
        let out = conv2d_forward(&input, &weight, &bias, Conv2dParams::default()).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn known_3x3_sum_kernel() {
        // All-ones 3x3 kernel over a 3x3 input of ones -> single output = 9.
        let input = Tensor::ones(&[1, 1, 3, 3]);
        let weight = Tensor::ones(&[1, 1, 3, 3]);
        let bias = Tensor::zeros(&[1]);
        let out = conv2d_forward(&input, &weight, &bias, Conv2dParams::default()).unwrap();
        assert_eq!(out.dims(), &[1, 1, 1, 1]);
        assert_eq!(out.as_slice(), &[9.0]);
    }

    #[test]
    fn bias_added_per_channel() {
        let input = Tensor::zeros(&[1, 1, 2, 2]);
        let weight = Tensor::zeros(&[3, 1, 1, 1]);
        let bias = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let out = conv2d_forward(&input, &weight, &bias, Conv2dParams::default()).unwrap();
        assert_eq!(out.dims(), &[1, 3, 2, 2]);
        let s = out.as_slice();
        assert!(s[0..4].iter().all(|&v| v == 1.0));
        assert!(s[4..8].iter().all(|&v| v == 2.0));
        assert!(s[8..12].iter().all(|&v| v == 3.0));
    }

    #[test]
    fn padding_preserves_spatial_size() {
        let input = Tensor::ones(&[1, 1, 4, 4]);
        let weight = Tensor::ones(&[1, 1, 3, 3]);
        let bias = Tensor::zeros(&[1]);
        let out =
            conv2d_forward(&input, &weight, &bias, Conv2dParams { stride: 1, padding: 1 }).unwrap();
        assert_eq!(out.dims(), &[1, 1, 4, 4]);
        // Corner sees a 2x2 window of ones -> 4; centre sees 3x3 -> 9.
        assert_eq!(out.at(&[0, 0, 0, 0]).unwrap(), 4.0);
        assert_eq!(out.at(&[0, 0, 1, 1]).unwrap(), 9.0);
    }

    #[test]
    fn stride_two_downsamples() {
        let input = Tensor::ones(&[1, 1, 4, 4]);
        let weight = Tensor::ones(&[1, 1, 2, 2]);
        let bias = Tensor::zeros(&[1]);
        let out =
            conv2d_forward(&input, &weight, &bias, Conv2dParams { stride: 2, padding: 0 }).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert!(out.as_slice().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn channel_mismatch_rejected() {
        let input = Tensor::zeros(&[1, 2, 4, 4]);
        let weight = Tensor::zeros(&[1, 3, 2, 2]);
        let bias = Tensor::zeros(&[1]);
        assert!(conv2d_forward(&input, &weight, &bias, Conv2dParams::default()).is_err());
    }

    /// Finite-difference gradient check across input, weight and bias.
    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let input = init::uniform(&mut rng, &[2, 2, 5, 5], -1.0, 1.0);
        let weight = init::uniform(&mut rng, &[3, 2, 3, 3], -0.5, 0.5);
        let bias = init::uniform(&mut rng, &[3], -0.1, 0.1);
        let params = Conv2dParams { stride: 1, padding: 1 };
        // Random upstream gradient; scalar loss L = sum(out * g_up).
        let out = conv2d_forward(&input, &weight, &bias, params).unwrap();
        let g_up = init::uniform(&mut rng, out.dims(), -1.0, 1.0);
        let grads = conv2d_backward(&input, &weight, &g_up, params).unwrap();

        let loss = |inp: &Tensor, wt: &Tensor, b: &Tensor| -> f32 {
            conv2d_forward(inp, wt, b, params).unwrap().dot(&g_up).unwrap()
        };
        let eps = 1e-2f32;

        // Check a sample of input coordinates.
        for &k in &[0usize, 7, 23, 49, 60] {
            let mut up = input.clone();
            up.as_mut_slice()[k] += eps;
            let mut dn = input.clone();
            dn.as_mut_slice()[k] -= eps;
            let fd = (loss(&up, &weight, &bias) - loss(&dn, &weight, &bias)) / (2.0 * eps);
            let an = grads.d_input.as_slice()[k];
            assert!((fd - an).abs() < 0.05, "d_input[{k}]: fd {fd} vs {an}");
        }
        // Check a sample of weight coordinates.
        for &k in &[0usize, 5, 17, 30, 53] {
            let mut up = weight.clone();
            up.as_mut_slice()[k] += eps;
            let mut dn = weight.clone();
            dn.as_mut_slice()[k] -= eps;
            let fd = (loss(&input, &up, &bias) - loss(&input, &dn, &bias)) / (2.0 * eps);
            let an = grads.d_weight.as_slice()[k];
            assert!((fd - an).abs() < 0.05, "d_weight[{k}]: fd {fd} vs {an}");
        }
        // Check all bias coordinates.
        for k in 0..3 {
            let mut up = bias.clone();
            up.as_mut_slice()[k] += eps;
            let mut dn = bias.clone();
            dn.as_mut_slice()[k] -= eps;
            let fd = (loss(&input, &weight, &up) - loss(&input, &weight, &dn)) / (2.0 * eps);
            let an = grads.d_bias.as_slice()[k];
            assert!((fd - an).abs() < 0.05, "d_bias[{k}]: fd {fd} vs {an}");
        }
    }

    #[test]
    fn backward_shapes() {
        let input = Tensor::zeros(&[2, 3, 8, 8]);
        let weight = Tensor::zeros(&[4, 3, 3, 3]);
        let bias = Tensor::zeros(&[4]);
        let params = Conv2dParams { stride: 2, padding: 1 };
        let out = conv2d_forward(&input, &weight, &bias, params).unwrap();
        assert_eq!(out.dims(), &[2, 4, 4, 4]);
        let grads = conv2d_backward(&input, &weight, &out, params).unwrap();
        assert_eq!(grads.d_input.dims(), input.dims());
        assert_eq!(grads.d_weight.dims(), weight.dims());
        assert_eq!(grads.d_bias.dims(), bias.dims());
    }
}
