//! im2col-based convolution: an alternative forward kernel that lowers the
//! convolution to one large matrix multiplication.
//!
//! The direct kernel in [`crate::conv`] wins on the small feature maps the
//! paper's models use (LeNet-5's 24×24, CNN-9's 28×28); im2col wins once
//! `in_c·kh·kw` gets large because the matmul amortises better over cache
//! lines. Both are exposed so the kernel micro-benches (`fedcav-bench
//! --bench kernels`) can compare, and the equivalence tests here pin them
//! to each other bit-for-bit-ish (f32 rounding aside).

use crate::conv::Conv2dParams;
use crate::{Result, Tensor, TensorError};

/// Unfold an NCHW input into the im2col matrix
/// `[n·oh·ow, in_c·kh·kw]`: row `r` holds the receptive field of output
/// pixel `r` (zero-padded out-of-range taps).
pub fn im2col(input: &Tensor, kh: usize, kw: usize, params: Conv2dParams) -> Result<Tensor> {
    let d = input.dims();
    if d.len() != 4 {
        return Err(TensorError::InvalidShape {
            op: "im2col",
            shape: d.to_vec(),
            expected: "rank 4 (NCHW)".to_string(),
        });
    }
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let oh = params.out_extent(h, kh).ok_or_else(|| TensorError::InvalidShape {
        op: "im2col",
        shape: d.to_vec(),
        expected: format!("spatial >= kernel {kh}x{kw} after padding"),
    })?;
    let ow = params.out_extent(w, kw).ok_or_else(|| TensorError::InvalidShape {
        op: "im2col",
        shape: d.to_vec(),
        expected: format!("spatial >= kernel {kh}x{kw} after padding"),
    })?;
    let x = input.as_slice();
    let row_len = c * kh * kw;
    let mut cols = vec![0.0f32; n * oh * ow * row_len];
    let (stride, pad) = (params.stride, params.padding);

    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * row_len;
                for ci in 0..c {
                    let x_plane = &x[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                    for ky in 0..kh {
                        let iy = oy * stride + ky;
                        for kx in 0..kw {
                            let ix = ox * stride + kx;
                            let dst = row + (ci * kh + ky) * kw + kx;
                            if iy >= pad && iy - pad < h && ix >= pad && ix - pad < w {
                                cols[dst] = x_plane[(iy - pad) * w + (ix - pad)];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(&[n * oh * ow, row_len], cols)
}

/// Forward convolution via im2col + matmul. Same contract as
/// [`crate::conv::conv2d_forward`].
pub fn conv2d_forward_im2col(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    params: Conv2dParams,
) -> Result<Tensor> {
    let wd = weight.dims();
    if wd.len() != 4 {
        return Err(TensorError::InvalidShape {
            op: "conv2d_forward_im2col(weight)",
            shape: wd.to_vec(),
            expected: "rank 4 (OIHW)".to_string(),
        });
    }
    let (out_c, in_c, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    let d = input.dims();
    if d.len() != 4 || d[1] != in_c {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_forward_im2col",
            lhs: d.to_vec(),
            rhs: wd.to_vec(),
        });
    }
    if bias.dims() != [out_c] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_forward_im2col(bias)",
            lhs: bias.dims().to_vec(),
            rhs: vec![out_c],
        });
    }
    let (n, h, w) = (d[0], d[2], d[3]);
    let oh = params.out_extent(h, kh).ok_or_else(|| TensorError::InvalidShape {
        op: "conv2d_forward_im2col",
        shape: d.to_vec(),
        expected: "spatial >= kernel after padding".to_string(),
    })?;
    let ow = params.out_extent(w, kw).ok_or_else(|| TensorError::InvalidShape {
        op: "conv2d_forward_im2col",
        shape: d.to_vec(),
        expected: "spatial >= kernel after padding".to_string(),
    })?;

    // cols: [n·oh·ow, K] ; weight as [K, out_c] -> out_rows [n·oh·ow, out_c].
    let cols = im2col(input, kh, kw, params)?;
    let k = in_c * kh * kw;
    let w_mat = weight.reshape(&[out_c, k])?.transpose()?;
    let out_rows = cols.matmul(&w_mat)?;

    // Transpose the [n·oh·ow, out_c] rows into NCHW and add bias.
    let rows = out_rows.as_slice();
    let b = bias.as_slice();
    let mut out = vec![0.0f32; n * out_c * oh * ow];
    for ni in 0..n {
        for p in 0..oh * ow {
            let row = &rows[(ni * oh * ow + p) * out_c..(ni * oh * ow + p + 1) * out_c];
            for (oc, &v) in row.iter().enumerate() {
                out[(ni * out_c + oc) * oh * ow + p] = v + b[oc];
            }
        }
    }
    Tensor::from_vec(&[n, out_c, oh, ow], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d_forward;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn im2col_identity_kernel_rows() {
        // 1x1 kernel: rows are just the channel values at each pixel.
        let input = Tensor::from_vec(&[1, 2, 2, 2], (0..8).map(|v| v as f32).collect()).unwrap();
        let cols = im2col(&input, 1, 1, Conv2dParams::default()).unwrap();
        assert_eq!(cols.dims(), &[4, 2]);
        assert_eq!(cols.as_slice(), &[0.0, 4.0, 1.0, 5.0, 2.0, 6.0, 3.0, 7.0]);
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let cols = im2col(&input, 3, 3, Conv2dParams { stride: 1, padding: 1 }).unwrap();
        assert_eq!(cols.dims(), &[4, 9]);
        // Top-left output: only the bottom-right 2x2 taps land in-bounds.
        let first = &cols.as_slice()[..9];
        assert_eq!(first, &[0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn matches_direct_conv_various_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let cases = [
            (2usize, 1usize, 8usize, 8usize, 4usize, 3usize, 1usize, 0usize),
            (1, 3, 9, 7, 2, 3, 2, 1),
            (3, 2, 6, 6, 5, 1, 1, 0),
            (1, 4, 10, 10, 3, 5, 1, 2),
            (2, 2, 8, 8, 3, 2, 2, 0),
        ];
        for &(n, c, h, w, oc, k, stride, padding) in &cases {
            let input = init::uniform(&mut rng, &[n, c, h, w], -1.0, 1.0);
            let weight = init::uniform(&mut rng, &[oc, c, k, k], -0.5, 0.5);
            let bias = init::uniform(&mut rng, &[oc], -0.1, 0.1);
            let params = Conv2dParams { stride, padding };
            let direct = conv2d_forward(&input, &weight, &bias, params).unwrap();
            let lowered = conv2d_forward_im2col(&input, &weight, &bias, params).unwrap();
            assert_close(&direct, &lowered, 1e-4);
        }
    }

    #[test]
    fn shape_errors_match_direct() {
        let input = Tensor::zeros(&[1, 2, 4, 4]);
        let weight = Tensor::zeros(&[1, 3, 3, 3]); // channel mismatch
        let bias = Tensor::zeros(&[1]);
        assert!(conv2d_forward_im2col(&input, &weight, &bias, Conv2dParams::default()).is_err());
        let weight = Tensor::zeros(&[1, 2, 3, 3]);
        let bias_bad = Tensor::zeros(&[2]);
        assert!(conv2d_forward_im2col(&input, &weight, &bias_bad, Conv2dParams::default()).is_err());
    }

    #[test]
    fn kernel_larger_than_input_rejected() {
        let input = Tensor::zeros(&[1, 1, 2, 2]);
        let weight = Tensor::zeros(&[1, 1, 5, 5]);
        let bias = Tensor::zeros(&[1]);
        assert!(conv2d_forward_im2col(&input, &weight, &bias, Conv2dParams::default()).is_err());
    }
}
