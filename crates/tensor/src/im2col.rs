//! im2col-based convolution: lowers the convolution (forward *and*
//! backward) to large matrix multiplications, fed by a reusable scratch
//! arena so steady-state training performs **zero** per-call allocations
//! for the lowered operands.
//!
//! The direct kernel in [`crate::conv`] wins on the very small feature
//! maps; im2col wins once `in_c·kh·kw` gets large because the blocked
//! matmul (see [`crate::matmul`]) amortises better over cache lines. Both
//! are exposed: `fedcav-nn`'s `Conv2d` uses the arena path under
//! `FEDCAV_KERNELS=blocked` and the direct kernels under `reference`, the
//! kernel micro-benches compare them, and the equivalence tests here pin
//! them to each other within f32 rounding.
//!
//! ## Scratch-arena ownership (DESIGN.md §12)
//!
//! [`Im2colScratch`] owns every intermediate buffer the lowering needs.
//! Each buffer is reset with `clear()` + `resize(len, 0.0)` before use —
//! *bit-for-bit identical* to a freshly zero-allocated vector, which is
//! what `tests/kernel_properties.rs` asserts by running a dirty shared
//! arena against the per-call wrappers. The arena grows to the largest
//! shape it has seen and is owned by the layer (one per `Conv2d`), never
//! shared across threads — the parallel executor runs whole clients, each
//! with its own model, so no synchronisation is needed.

use crate::conv::{Conv2dGrads, Conv2dParams};
use crate::matmul::{kernel_mode, matmul_into, Epilogue, KernelMode};
use crate::{Result, Tensor, TensorError};

/// Reusable buffers for the im2col lowering. See the module docs for the
/// ownership story and the freshness guarantee.
#[derive(Debug, Default)]
pub struct Im2colScratch {
    /// `[n·oh·ow, in_c·kh·kw]` unfolded input patches.
    cols: Vec<f32>,
    /// `[in_c·kh·kw, out_c]` transposed weight (forward).
    w_mat: Vec<f32>,
    /// `[n·oh·ow, out_c]` matmul output rows (forward).
    out_rows: Vec<f32>,
    /// `[n·oh·ow, out_c]` upstream gradient re-laid per output pixel.
    d_rows: Vec<f32>,
    /// `[out_c, n·oh·ow]` transpose of `d_rows` (for `d_weight`).
    dr_t: Vec<f32>,
    /// `[n·oh·ow, in_c·kh·kw]` patch gradients before col2im scatter.
    d_cols: Vec<f32>,
}

impl Im2colScratch {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Im2colScratch {
        Im2colScratch::default()
    }

    /// Total capacity currently held across all buffers, in f32 elements.
    /// Diagnostic only (lets tests assert the arena actually persists).
    pub fn capacity_elems(&self) -> usize {
        self.cols.capacity()
            + self.w_mat.capacity()
            + self.out_rows.capacity()
            + self.d_rows.capacity()
            + self.dr_t.capacity()
            + self.d_cols.capacity()
    }
}

/// Validated geometry shared by the forward and backward lowerings.
struct ConvDims {
    n: usize,
    in_c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    kh: usize,
    kw: usize,
    oh: usize,
    ow: usize,
}

fn check_conv_dims(
    op: &'static str,
    input: &Tensor,
    weight: &Tensor,
    params: Conv2dParams,
) -> Result<ConvDims> {
    let wd = weight.dims();
    let &[out_c, in_c, kh, kw] = wd else {
        return Err(TensorError::InvalidShape {
            op,
            shape: wd.to_vec(),
            expected: "rank 4 (OIHW)".to_string(),
        });
    };
    let d = input.dims();
    let &[n, ic, h, w] = d else {
        return Err(TensorError::ShapeMismatch { op, lhs: d.to_vec(), rhs: wd.to_vec() });
    };
    if ic != in_c {
        return Err(TensorError::ShapeMismatch { op, lhs: d.to_vec(), rhs: wd.to_vec() });
    }
    let extent = |len, klen| {
        params.out_extent(len, klen).ok_or_else(|| TensorError::InvalidShape {
            op,
            shape: d.to_vec(),
            expected: "spatial >= kernel after padding".to_string(),
        })
    };
    let oh = extent(h, kh)?;
    let ow = extent(w, kw)?;
    Ok(ConvDims { n, in_c, h, w, out_c, kh, kw, oh, ow })
}

/// Unfold an NCHW input into the im2col matrix
/// `[n·oh·ow, in_c·kh·kw]`: row `r` holds the receptive field of output
/// pixel `r` (zero-padded out-of-range taps).
pub fn im2col(input: &Tensor, kh: usize, kw: usize, params: Conv2dParams) -> Result<Tensor> {
    let d = input.dims();
    let &[n, c, h, w] = d else {
        return Err(TensorError::InvalidShape {
            op: "im2col",
            shape: d.to_vec(),
            expected: "rank 4 (NCHW)".to_string(),
        });
    };
    let oh = params.out_extent(h, kh).ok_or_else(|| TensorError::InvalidShape {
        op: "im2col",
        shape: d.to_vec(),
        expected: format!("spatial >= kernel {kh}x{kw} after padding"),
    })?;
    let ow = params.out_extent(w, kw).ok_or_else(|| TensorError::InvalidShape {
        op: "im2col",
        shape: d.to_vec(),
        expected: format!("spatial >= kernel {kh}x{kw} after padding"),
    })?;
    let mut cols = Vec::new();
    im2col_into(input, kh, kw, params, oh, ow, &mut cols);
    Tensor::from_vec(&[n * oh * ow, c * kh * kw], cols)
}

/// The arena form of [`im2col`]: unfold into `cols`, clearing and
/// re-zeroing it first (bit-identical to a fresh allocation). Geometry is
/// assumed pre-validated.
fn im2col_into(
    input: &Tensor,
    kh: usize,
    kw: usize,
    params: Conv2dParams,
    oh: usize,
    ow: usize,
    cols: &mut Vec<f32>,
) {
    let d = input.dims();
    let &[n, c, h, w] = d else {
        return;
    };
    let x = input.as_slice();
    let row_len = c * kh * kw;
    cols.clear();
    cols.resize(n * oh * ow * row_len, 0.0);
    if row_len == 0 || h * w == 0 {
        return;
    }
    let (stride, pad) = (params.stride, params.padding);

    // One `cols` row per output pixel; within a row the taps are laid out
    // `[c, kh, kw]`, so a `kw`-wide chunk is one (channel, ky) tap run.
    // Out-of-range taps keep the zero the resize wrote.
    let mut dst_rows = cols.chunks_exact_mut(row_len);
    for x_img in x.chunks_exact(c * h * w) {
        for oy in 0..oh {
            for ox in 0..ow {
                let Some(dst_row) = dst_rows.next() else {
                    return;
                };
                let mut taps = dst_row.chunks_exact_mut(kw);
                for x_plane in x_img.chunks_exact(h * w) {
                    for ky in 0..kh {
                        let Some(tap_row) = taps.next() else {
                            break;
                        };
                        let iy = oy * stride + ky;
                        if iy < pad {
                            continue;
                        }
                        let base = (iy - pad) * w;
                        let Some(src_row) = x_plane.get(base..base + w) else {
                            continue;
                        };
                        for (kx, t) in tap_row.iter_mut().enumerate() {
                            let ix = ox * stride + kx;
                            if ix < pad {
                                continue;
                            }
                            if let Some(&v) = src_row.get(ix - pad) {
                                *t = v;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `dst = src^T` for a row-major `[rows, cols]` matrix, arena-reset first.
fn transpose_into(src: &[f32], rows: usize, cols: usize, dst: &mut Vec<f32>) {
    dst.clear();
    dst.resize(rows * cols, 0.0);
    if rows == 0 || cols == 0 {
        return;
    }
    for (c, dst_col) in dst.chunks_exact_mut(rows).enumerate() {
        for (slot, src_row) in dst_col.iter_mut().zip(src.chunks_exact(cols)) {
            if let Some(&v) = src_row.get(c) {
                *slot = v;
            }
        }
    }
}

/// Forward convolution via im2col + matmul. Same contract as
/// [`crate::conv::conv2d_forward`]. Allocates fresh scratch per call; the
/// arena form is [`conv2d_forward_im2col_with`].
pub fn conv2d_forward_im2col(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    params: Conv2dParams,
) -> Result<Tensor> {
    conv2d_forward_im2col_with(input, weight, bias, params, false, &mut Im2colScratch::new())
}

/// Forward convolution via im2col + matmul, with a caller-owned scratch
/// arena and an optional fused ReLU epilogue.
///
/// The bias add (and ReLU, when `relu`) is fused into the lowered
/// matmul's output store — per-element this is the exact operation
/// sequence of the unfused path (`sum`, `+ bias[oc]`, `max(0)`), so the
/// fusion is bitwise-invisible.
pub fn conv2d_forward_im2col_with(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    params: Conv2dParams,
    relu: bool,
    scratch: &mut Im2colScratch,
) -> Result<Tensor> {
    conv2d_forward_im2col_mode(kernel_mode(), input, weight, bias, params, relu, scratch)
}

/// The fully explicit forward lowering: like
/// [`conv2d_forward_im2col_with`] but with the matmul kernel named by the
/// caller instead of read from the process-global mode — the form the
/// backend implementations in [`crate::backend`] build on.
pub fn conv2d_forward_im2col_mode(
    mode: KernelMode,
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    params: Conv2dParams,
    relu: bool,
    scratch: &mut Im2colScratch,
) -> Result<Tensor> {
    let g = check_conv_dims("conv2d_forward_im2col", input, weight, params)?;
    if bias.dims() != [g.out_c] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_forward_im2col(bias)",
            lhs: bias.dims().to_vec(),
            rhs: vec![g.out_c],
        });
    }
    let k = g.in_c * g.kh * g.kw;
    let rows = g.n * g.oh * g.ow;

    // cols: [rows, K] ; weight as [K, out_c] -> out_rows [rows, out_c].
    im2col_into(input, g.kh, g.kw, params, g.oh, g.ow, &mut scratch.cols);
    transpose_into(weight.as_slice(), g.out_c, k, &mut scratch.w_mat);
    crate::counters::record_matmul(rows, k, g.out_c);
    let ep =
        if relu { Epilogue::BiasRelu(bias.as_slice()) } else { Epilogue::Bias(bias.as_slice()) };
    matmul_into(
        mode,
        &scratch.cols,
        &scratch.w_mat,
        rows,
        k,
        g.out_c,
        ep,
        &mut scratch.out_rows,
    );

    // Transpose the [rows, out_c] matmul output into NCHW.
    let plane = g.oh * g.ow;
    let mut out = vec![0.0f32; g.n * g.out_c * plane];
    if g.out_c > 0 {
        for (rows_img, out_img) in scratch
            .out_rows
            .chunks_exact(plane * g.out_c)
            .zip(out.chunks_exact_mut(g.out_c * plane))
        {
            for (oc, out_plane) in out_img.chunks_exact_mut(plane).enumerate() {
                for (o, row) in out_plane.iter_mut().zip(rows_img.chunks_exact(g.out_c)) {
                    if let Some(&v) = row.get(oc) {
                        *o = v;
                    }
                }
            }
        }
    }
    crate::sanitize::check_output("conv2d_forward_im2col", &[g.n, g.out_c, g.oh, g.ow], &out);
    Tensor::from_vec(&[g.n, g.out_c, g.oh, g.ow], out)
}

/// Backward convolution via the im2col lowering. Same contract (and
/// gradient definitions) as [`crate::conv::conv2d_backward`]; results
/// agree with the direct kernel within f32 rounding. Allocates fresh
/// scratch per call; the arena form is [`conv2d_backward_im2col_with`].
pub fn conv2d_backward_im2col(
    input: &Tensor,
    weight: &Tensor,
    d_out: &Tensor,
    params: Conv2dParams,
) -> Result<Conv2dGrads> {
    conv2d_backward_im2col_with(input, weight, d_out, params, &mut Im2colScratch::new())
}

/// Backward convolution via im2col, with a caller-owned scratch arena.
///
/// With `cols = im2col(input)` (`[rows, K]`) and the upstream gradient
/// re-laid as `d_rows` (`[rows, out_c]`), the three gradients are:
///
/// * `d_bias[oc]   = Σ_rows d_rows`            (per-channel plane sums),
/// * `d_weight     = d_rows^T × cols`          (`[out_c, K]`, which *is*
///   OIHW flattened),
/// * `d_input      = col2im(d_rows × weight)`  (scatter-add of the patch
///   gradient back through the unfolding).
pub fn conv2d_backward_im2col_with(
    input: &Tensor,
    weight: &Tensor,
    d_out: &Tensor,
    params: Conv2dParams,
    scratch: &mut Im2colScratch,
) -> Result<Conv2dGrads> {
    conv2d_backward_im2col_mode(kernel_mode(), input, weight, d_out, params, scratch)
}

/// The fully explicit backward lowering: like
/// [`conv2d_backward_im2col_with`] but with the matmul kernel named by the
/// caller — the form the backend implementations build on.
pub fn conv2d_backward_im2col_mode(
    mode: KernelMode,
    input: &Tensor,
    weight: &Tensor,
    d_out: &Tensor,
    params: Conv2dParams,
    scratch: &mut Im2colScratch,
) -> Result<Conv2dGrads> {
    let g = check_conv_dims("conv2d_backward_im2col", input, weight, params)?;
    let od = d_out.dims();
    if od != [g.n, g.out_c, g.oh, g.ow] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward_im2col(d_out)",
            lhs: od.to_vec(),
            rhs: vec![g.n, g.out_c, g.oh, g.ow],
        });
    }
    let k = g.in_c * g.kh * g.kw;
    let rows = g.n * g.oh * g.ow;
    let plane = g.oh * g.ow;
    let go = d_out.as_slice();

    im2col_into(input, g.kh, g.kw, params, g.oh, g.ow, &mut scratch.cols);

    // d_rows [rows, out_c]: NCHW upstream gradient re-laid per output
    // pixel, plus the bias gradient (plane sums) in the same sweep.
    scratch.d_rows.clear();
    scratch.d_rows.resize(rows * g.out_c, 0.0);
    let mut d_bias = vec![0.0f32; g.out_c];
    if g.out_c > 0 {
        for (go_img, dr_img) in
            go.chunks_exact(g.out_c * plane).zip(scratch.d_rows.chunks_exact_mut(plane * g.out_c))
        {
            for ((src, db), oc) in go_img.chunks_exact(plane).zip(d_bias.iter_mut()).zip(0..) {
                for (&v, dst_row) in src.iter().zip(dr_img.chunks_exact_mut(g.out_c)) {
                    if let Some(slot) = dst_row.get_mut(oc) {
                        *slot = v;
                    }
                    *db += v;
                }
            }
        }
    }

    // d_weight [out_c, K] = d_rows^T × cols.
    transpose_into(&scratch.d_rows, rows, g.out_c, &mut scratch.dr_t);
    crate::counters::record_matmul(g.out_c, rows, k);
    let mut d_weight = Vec::new();
    matmul_into(
        mode,
        &scratch.dr_t,
        &scratch.cols,
        g.out_c,
        rows,
        k,
        Epilogue::None,
        &mut d_weight,
    );

    // d_cols [rows, K] = d_rows × weight-as-[out_c, K].
    crate::counters::record_matmul(rows, g.out_c, k);
    matmul_into(
        mode,
        &scratch.d_rows,
        weight.as_slice(),
        rows,
        g.out_c,
        k,
        Epilogue::None,
        &mut scratch.d_cols,
    );

    // col2im: scatter-add each patch gradient back onto the input plane,
    // in the same fixed row/tap order im2col read it (deterministic).
    let mut d_input = vec![0.0f32; g.n * g.in_c * g.h * g.w];
    let (stride, pad) = (params.stride, params.padding);
    if k > 0 && g.h * g.w > 0 {
        for (col_img, d_img) in
            scratch.d_cols.chunks_exact(plane * k).zip(d_input.chunks_exact_mut(g.in_c * g.h * g.w))
        {
            for (r, row) in col_img.chunks_exact(k).enumerate() {
                let (oy, ox) = (r / g.ow, r % g.ow);
                let mut taps = row.chunks_exact(g.kw);
                for d_plane in d_img.chunks_exact_mut(g.h * g.w) {
                    for ky in 0..g.kh {
                        let Some(tap_row) = taps.next() else {
                            break;
                        };
                        let iy = oy * stride + ky;
                        if iy < pad {
                            continue;
                        }
                        let base = (iy - pad) * g.w;
                        let Some(dst_row) = d_plane.get_mut(base..base + g.w) else {
                            continue;
                        };
                        for (kx, &v) in tap_row.iter().enumerate() {
                            let ix = ox * stride + kx;
                            if ix < pad {
                                continue;
                            }
                            if let Some(slot) = dst_row.get_mut(ix - pad) {
                                *slot += v;
                            }
                        }
                    }
                }
            }
        }
    }

    crate::sanitize::check_output(
        "conv2d_backward_im2col(d_input)",
        &[g.n, g.in_c, g.h, g.w],
        &d_input,
    );
    crate::sanitize::check_output(
        "conv2d_backward_im2col(d_weight)",
        &[g.out_c, g.in_c, g.kh, g.kw],
        &d_weight,
    );
    crate::sanitize::check_output("conv2d_backward_im2col(d_bias)", &[g.out_c], &d_bias);
    Ok(Conv2dGrads {
        d_input: Tensor::from_vec(&[g.n, g.in_c, g.h, g.w], d_input)?,
        d_weight: Tensor::from_vec(&[g.out_c, g.in_c, g.kh, g.kw], d_weight)?,
        d_bias: Tensor::from_vec(&[g.out_c], d_bias)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{conv2d_backward, conv2d_forward};
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    fn assert_bits(a: &Tensor, b: &Tensor) {
        assert_eq!(a.dims(), b.dims());
        let same = a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "tensors differ bitwise");
    }

    const CASES: [(usize, usize, usize, usize, usize, usize, usize, usize); 5] = [
        (2, 1, 8, 8, 4, 3, 1, 0),
        (1, 3, 9, 7, 2, 3, 2, 1),
        (3, 2, 6, 6, 5, 1, 1, 0),
        (1, 4, 10, 10, 3, 5, 1, 2),
        (2, 2, 8, 8, 3, 2, 2, 0),
    ];

    #[test]
    fn im2col_identity_kernel_rows() {
        // 1x1 kernel: rows are just the channel values at each pixel.
        let input = Tensor::from_vec(&[1, 2, 2, 2], (0..8).map(|v| v as f32).collect()).unwrap();
        let cols = im2col(&input, 1, 1, Conv2dParams::default()).unwrap();
        assert_eq!(cols.dims(), &[4, 2]);
        assert_eq!(cols.as_slice(), &[0.0, 4.0, 1.0, 5.0, 2.0, 6.0, 3.0, 7.0]);
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let cols = im2col(&input, 3, 3, Conv2dParams { stride: 1, padding: 1 }).unwrap();
        assert_eq!(cols.dims(), &[4, 9]);
        // Top-left output: only the bottom-right 2x2 taps land in-bounds.
        let first = &cols.as_slice()[..9];
        assert_eq!(first, &[0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn matches_direct_conv_various_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        for &(n, c, h, w, oc, k, stride, padding) in &CASES {
            let input = init::uniform(&mut rng, &[n, c, h, w], -1.0, 1.0);
            let weight = init::uniform(&mut rng, &[oc, c, k, k], -0.5, 0.5);
            let bias = init::uniform(&mut rng, &[oc], -0.1, 0.1);
            let params = Conv2dParams { stride, padding };
            let direct = conv2d_forward(&input, &weight, &bias, params).unwrap();
            let lowered = conv2d_forward_im2col(&input, &weight, &bias, params).unwrap();
            assert_close(&direct, &lowered, 1e-4);
        }
    }

    #[test]
    fn backward_matches_direct_conv_various_shapes() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(n, c, h, w, oc, k, stride, padding) in &CASES {
            let input = init::uniform(&mut rng, &[n, c, h, w], -1.0, 1.0);
            let weight = init::uniform(&mut rng, &[oc, c, k, k], -0.5, 0.5);
            let params = Conv2dParams { stride, padding };
            let oh = params.out_extent(h, k).unwrap();
            let ow = params.out_extent(w, k).unwrap();
            let d_out = init::uniform(&mut rng, &[n, oc, oh, ow], -1.0, 1.0);
            let direct = conv2d_backward(&input, &weight, &d_out, params).unwrap();
            let lowered = conv2d_backward_im2col(&input, &weight, &d_out, params).unwrap();
            assert_close(&direct.d_input, &lowered.d_input, 1e-4);
            assert_close(&direct.d_weight, &lowered.d_weight, 1e-3);
            assert_close(&direct.d_bias, &lowered.d_bias, 1e-4);
        }
    }

    #[test]
    fn dirty_arena_reuse_is_bit_identical_to_fresh() {
        // One arena across every case — including shrinking shapes, so
        // stale data from larger runs would surface immediately.
        let _guard = crate::matmul::MODE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut rng = StdRng::seed_from_u64(23);
        let mut arena = Im2colScratch::new();
        for &(n, c, h, w, oc, k, stride, padding) in &CASES {
            let input = init::uniform(&mut rng, &[n, c, h, w], -1.0, 1.0);
            let weight = init::uniform(&mut rng, &[oc, c, k, k], -0.5, 0.5);
            let bias = init::uniform(&mut rng, &[oc], -0.1, 0.1);
            let params = Conv2dParams { stride, padding };
            let fresh = conv2d_forward_im2col(&input, &weight, &bias, params).unwrap();
            let reused =
                conv2d_forward_im2col_with(&input, &weight, &bias, params, false, &mut arena)
                    .unwrap();
            assert_bits(&fresh, &reused);
            let oh = params.out_extent(h, k).unwrap();
            let ow = params.out_extent(w, k).unwrap();
            let d_out = init::uniform(&mut rng, &[n, oc, oh, ow], -1.0, 1.0);
            let fresh_b = conv2d_backward_im2col(&input, &weight, &d_out, params).unwrap();
            let reused_b =
                conv2d_backward_im2col_with(&input, &weight, &d_out, params, &mut arena).unwrap();
            assert_bits(&fresh_b.d_input, &reused_b.d_input);
            assert_bits(&fresh_b.d_weight, &reused_b.d_weight);
            assert_bits(&fresh_b.d_bias, &reused_b.d_bias);
        }
        assert!(arena.capacity_elems() > 0);
    }

    #[test]
    fn fused_relu_matches_forward_then_relu_bitwise() {
        let _guard = crate::matmul::MODE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut rng = StdRng::seed_from_u64(37);
        let input = init::uniform(&mut rng, &[2, 3, 7, 7], -1.0, 1.0);
        let weight = init::uniform(&mut rng, &[4, 3, 3, 3], -0.5, 0.5);
        let bias = init::uniform(&mut rng, &[4], -0.5, 0.5);
        let params = Conv2dParams { stride: 1, padding: 1 };
        let mut unfused = conv2d_forward_im2col(&input, &weight, &bias, params).unwrap();
        unfused.map_in_place(|v| v.max(0.0));
        let fused = conv2d_forward_im2col_with(
            &input,
            &weight,
            &bias,
            params,
            true,
            &mut Im2colScratch::new(),
        )
        .unwrap();
        assert_bits(&unfused, &fused);
    }

    #[test]
    fn backward_d_out_shape_checked() {
        let input = Tensor::zeros(&[1, 2, 4, 4]);
        let weight = Tensor::zeros(&[3, 2, 3, 3]);
        let bad = Tensor::zeros(&[1, 3, 4, 4]); // wrong spatial extent
        assert!(conv2d_backward_im2col(&input, &weight, &bad, Conv2dParams::default()).is_err());
    }

    #[test]
    fn shape_errors_match_direct() {
        let input = Tensor::zeros(&[1, 2, 4, 4]);
        let weight = Tensor::zeros(&[1, 3, 3, 3]); // channel mismatch
        let bias = Tensor::zeros(&[1]);
        assert!(conv2d_forward_im2col(&input, &weight, &bias, Conv2dParams::default()).is_err());
        let weight = Tensor::zeros(&[1, 2, 3, 3]);
        let bias_bad = Tensor::zeros(&[2]);
        assert!(conv2d_forward_im2col(&input, &weight, &bias_bad, Conv2dParams::default()).is_err());
    }

    #[test]
    fn kernel_larger_than_input_rejected() {
        let input = Tensor::zeros(&[1, 1, 2, 2]);
        let weight = Tensor::zeros(&[1, 1, 5, 5]);
        let bias = Tensor::zeros(&[1]);
        assert!(conv2d_forward_im2col(&input, &weight, &bias, Conv2dParams::default()).is_err());
    }
}
