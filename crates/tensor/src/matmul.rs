//! The matmul kernel pair: a cache-blocked register-tiled kernel (the
//! default) and the original naive kernel kept alive as the `reference`
//! oracle (DESIGN.md §12).
//!
//! ## Layout and blocking
//!
//! The blocked kernel first **packs `rhs` into column panels**: tile `t`
//! of the packed buffer holds rows `0..k` of `rhs` columns
//! `t*NR..t*NR+NR`, contiguous and zero-padded to exactly [`NR`] lanes.
//! Packing is a pure copy (no arithmetic), costs one pass over `rhs`, and
//! turns the micro-kernel's `rhs` access from a stride-`n` gather — which
//! falls out of L1 as soon as `n×4` bytes exceed a few cache lines — into
//! a 32-byte streaming read. The buffer is thread-local and reused, so
//! warm calls do not allocate.
//!
//! The output is then partitioned into **row bands of [`MR`] rows** (the
//! rayon work unit — bands touch disjoint output rows, so the split is
//! embarrassingly parallel) and each band walks the packed panels as
//! **column tiles of [`NR`]**. A full `MR×NR` tile is accumulated in `MR`
//! stack arrays of `NR` lanes — small enough to live in registers on
//! SSE2's sixteen xmm — while the `k` loop streams one packed panel row.
//! Relative to the naive kernel, which re-reads and re-writes the whole
//! `n`-wide output row on every `k` step, the band/tile shape cuts output
//! traffic by `k×` (the accumulator never leaves registers until the tile
//! is done) and `rhs` traffic by `MR×`.
//!
//! ## Accumulation order and determinism
//!
//! Every output element is produced by **one scalar accumulator updated in
//! strictly ascending `k` order** — in the full-tile micro-kernel, the
//! row-remainder path, and the reference kernel alike. Packing does not
//! enter the argument: it copies `rhs` values bit-for-bit and only
//! relocates them. Floating-point addition is deterministic for a fixed
//! operand order, so each kernel is **run-to-run and thread-count
//! bit-identical**: the parallel split only chooses *who* computes a band,
//! never the order of the adds inside an element.
//!
//! On x86-64 with AVX2+FMA (detected once at runtime) the full-band
//! micro-kernel uses fused multiply-add: the same accumulator and the same
//! `k` order, but each update rounds once instead of twice. The path
//! choice depends only on the CPU, never on thread scheduling or data, so
//! run-to-run and thread-count bit-identity are unaffected; bit-identity
//! *across machines with different ISAs* is not promised (the differential
//! suite compares kernels within tolerance, and every bitwise test
//! compares same-process runs).
//!
//! Blocked and reference results may still differ in the last ulp
//! *from each other* (the reference kernel skips `a_ik == 0.0` terms;
//! adding a signed zero is not always a bitwise no-op), which is why the
//! differential suite (`tests/kernel_properties.rs`) compares the two
//! within relative tolerance rather than bit-for-bit.
//!
//! ## Fused epilogues
//!
//! [`Epilogue`] applies a per-column bias add and/or ReLU to each output
//! element **after** its accumulation finishes. The fused form performs
//! exactly the same per-element operation sequence as a matmul followed by
//! separate bias/ReLU passes (`sum`, then `+ bias[j]`, then `max(0)`), so
//! fusing is bitwise-invisible — `fedcav-nn`'s fused layers are pinned to
//! their unfused stacks by exact equality tests.
//!
//! ## Selection
//!
//! Kernel selection lives in [`crate::backend`]: the process-global
//! backend is chosen once from `FEDCAV_BACKEND` (`blocked` | `reference`
//! | `f16`, default `blocked`; `FEDCAV_KERNELS` remains a deprecated
//! alias) and cached. [`kernel_mode`] and [`force_kernel_mode`] are thin
//! views of that state kept for the call sites that only care about the
//! blocked-vs-reference matmul distinction.
//!
//! This module is on the `no-panic-in-round-loop` lint path: client
//! training runs inside the fault-tolerant round loop, and a panicking
//! kernel would kill the simulation instead of costing one contribution.
//! Everything here is written with iterators and checked slicing.

use crate::backend::{backend_kind, force_backend_kind, BackendKind};
use rayon::prelude::*;

/// Rows per register tile (and per parallel band).
pub const MR: usize = 4;

/// Columns per register tile.
pub const NR: usize = 8;

/// Minimum output element count before the kernels fan out to rayon; same
/// rationale (and value) as the elementwise threshold in `tensor.rs`.
const PAR_THRESHOLD: usize = 16 * 1024;

/// Which matmul kernel backs [`crate::Tensor::matmul`] and the im2col
/// convolution lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// The cache-blocked, register-tiled kernel (default).
    Blocked,
    /// The original naive kernel: the oracle for differential tests and
    /// the `FEDCAV_KERNELS=reference` escape hatch.
    Reference,
}

impl KernelMode {
    /// Parse the legacy `FEDCAV_KERNELS` spelling. `None` for anything
    /// else (including `f16`, which is a backend, not a matmul kernel).
    pub fn parse(s: &str) -> Option<KernelMode> {
        match s.trim() {
            "blocked" => Some(KernelMode::Blocked),
            "reference" => Some(KernelMode::Reference),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelMode::Blocked => write!(f, "blocked"),
            KernelMode::Reference => write!(f, "reference"),
        }
    }
}

/// Serializes tests that force the process-global backend against tests
/// that compare two mode-dependent calls bit-for-bit. Alias of the
/// backend module's lock — the underlying state is one and the same.
#[cfg(test)]
pub(crate) use crate::backend::KIND_TEST_LOCK as MODE_TEST_LOCK;

/// The matmul kernel the process-global backend uses: [`Reference`]
/// exactly when the backend is the reference oracle, [`Blocked`] for the
/// blocked *and* f16-storage backends (the latter quantizes operands but
/// accumulates on the blocked kernel).
///
/// [`Reference`]: KernelMode::Reference
/// [`Blocked`]: KernelMode::Blocked
pub fn kernel_mode() -> KernelMode {
    match backend_kind() {
        BackendKind::Reference => KernelMode::Reference,
        BackendKind::CpuBlocked | BackendKind::F16Storage => KernelMode::Blocked,
    }
}

/// Override the process-global backend through the legacy kernel-mode
/// lens (benches and tests; callers that need the previous state back
/// should capture [`crate::backend::backend_kind`] first). Forcing a
/// kernel mode selects the matching *f32* backend — it never selects
/// `F16Storage`, which has no `KernelMode` spelling.
pub fn force_kernel_mode(mode: KernelMode) {
    force_backend_kind(match mode {
        KernelMode::Blocked => BackendKind::CpuBlocked,
        KernelMode::Reference => BackendKind::Reference,
    });
}

/// A per-element finishing step fused into the kernel's output store,
/// applied after the element's `k`-accumulation completes. `Bias` slices
/// are indexed by output column and must have length `n`.
#[derive(Debug, Clone, Copy)]
pub enum Epilogue<'a> {
    /// Store the raw accumulator.
    None,
    /// `max(acc, 0)`.
    Relu,
    /// `acc + bias[j]`.
    Bias(&'a [f32]),
    /// `max(acc + bias[j], 0)`.
    BiasRelu(&'a [f32]),
}

/// Dispatch to the kernel selected by `mode`. `out` is cleared and
/// resized; `a` is `[m,k]` row-major, `b` is `[k,n]` row-major.
///
/// The dimension arguments are trusted (the `Tensor` entry points
/// validate); short operand slices produce short (zero-padded) results
/// rather than panicking.
pub fn matmul_into(
    mode: KernelMode,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue<'_>,
    out: &mut Vec<f32>,
) {
    match mode {
        KernelMode::Blocked => matmul_blocked_into(a, b, m, k, n, ep, out),
        KernelMode::Reference => matmul_reference_into(a, b, m, k, n, ep, out),
    }
}

/// The original naive kernel, verbatim from the pre-blocking `Tensor::
/// matmul` (zero-skip included): for each output row, walk `k` ascending
/// and stream the matching `rhs` row across the whole output row. Kept as
/// the oracle for the differential property suite.
pub fn matmul_reference_into(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue<'_>,
    out: &mut Vec<f32>,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    out.clear();
    out.resize(m * n, 0.0);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for row in out.chunks_mut(n) {
            epilogue_row(row, ep);
        }
        return;
    }
    let row_job = |(out_row, a_row): (&mut [f32], &[f32])| {
        for (&a_ik, b_row) in a_row.iter().zip(b.chunks_exact(n)) {
            if a_ik == 0.0 {
                continue;
            }
            for (o, &b_kn) in out_row.iter_mut().zip(b_row) {
                *o += a_ik * b_kn;
            }
        }
        epilogue_row(out_row, ep);
    };
    if m * n >= PAR_THRESHOLD {
        out.par_chunks_mut(n).zip(a.par_chunks(k)).for_each(row_job);
    } else {
        out.chunks_mut(n).zip(a.chunks(k)).for_each(row_job);
    }
}

std::thread_local! {
    /// Per-thread packed-`rhs` buffer, reused across calls so the warm
    /// path does not allocate. Thread-local (not a pool) because clients
    /// train on distinct executor threads and must not contend.
    static PACK_BUF: std::cell::RefCell<Vec<f32>> = std::cell::RefCell::new(Vec::new());
}

/// Pack `rhs` (`[k,n]` row-major) into column panels: tile `t` holds
/// columns `t*NR..t*NR+NR` of every row, contiguous, short tiles
/// zero-padded to `NR` lanes (padded lanes are discarded at store time).
fn pack_rhs(b: &[f32], k: usize, n: usize, packed: &mut Vec<f32>) {
    let tiles = n.div_ceil(NR);
    packed.clear();
    packed.resize(tiles * k * NR, 0.0);
    for (t, panel) in packed.chunks_exact_mut(k * NR).enumerate() {
        let jt = t * NR;
        let nw = NR.min(n - jt);
        for (b_row, dst) in b.chunks_exact(n).zip(panel.chunks_exact_mut(NR)) {
            if let (Some(src), Some(d)) = (b_row.get(jt..jt + nw), dst.get_mut(..nw)) {
                d.copy_from_slice(src);
            }
        }
    }
}

/// The cache-blocked kernel: packed `rhs` panels, `MR`-row bands ×
/// `NR`-column register tiles, `k` innermost and strictly ascending (see
/// the module docs for the determinism argument).
pub fn matmul_blocked_into(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue<'_>,
    out: &mut Vec<f32>,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    out.clear();
    out.resize(m * n, 0.0);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for row in out.chunks_mut(n) {
            epilogue_row(row, ep);
        }
        return;
    }
    PACK_BUF.with(|cell| {
        let mut buf = cell.borrow_mut();
        pack_rhs(b, k, n, &mut buf);
        let packed: &[f32] = &buf;
        let band_job = |(out_band, a_band): (&mut [f32], &[f32])| {
            blocked_band(a_band, packed, k, n, ep, out_band);
        };
        if m * n >= PAR_THRESHOLD {
            out.par_chunks_mut(MR * n).zip(a.par_chunks(MR * k)).for_each(band_job);
        } else {
            out.chunks_mut(MR * n).zip(a.chunks(MR * k)).for_each(band_job);
        }
    });
}

/// One output band of at most `MR` rows, walking the packed panels.
fn blocked_band(
    a_band: &[f32],
    packed: &[f32],
    k: usize,
    n: usize,
    ep: Epilogue<'_>,
    out_band: &mut [f32],
) {
    if a_band.len() == MR * k && out_band.len() == MR * n {
        // Full band: the 4-row micro-kernel shares each packed panel row
        // load across all four accumulator rows.
        let mut a_rows = a_band.chunks_exact(k);
        let mut out_rows = out_band.chunks_exact_mut(n);
        let (Some(a0), Some(a1), Some(a2), Some(a3)) =
            (a_rows.next(), a_rows.next(), a_rows.next(), a_rows.next())
        else {
            return;
        };
        let (Some(o0), Some(o1), Some(o2), Some(o3)) =
            (out_rows.next(), out_rows.next(), out_rows.next(), out_rows.next())
        else {
            return;
        };
        #[cfg(target_arch = "x86_64")]
        if fma::available() {
            for (t, panel) in packed.chunks_exact(k * NR).enumerate() {
                let jt = t * NR;
                let nw = NR.min(n - jt);
                // SAFETY: `fma::available()` checked the CPU features; the
                // slice-length invariants are re-checked defensively inside.
                unsafe { fma::micro_tile_4(a0, a1, a2, a3, panel, jt, nw, ep, o0, o1, o2, o3) };
            }
            return;
        }
        for (t, panel) in packed.chunks_exact(k * NR).enumerate() {
            let jt = t * NR;
            let nw = NR.min(n - jt);
            micro_tile_4(a0, a1, a2, a3, panel, jt, nw, ep, o0, o1, o2, o3);
        }
    } else {
        // Remainder band (m % MR rows): one row at a time. Identical
        // per-element accumulation order, so results cannot depend on
        // which path computed a row.
        for (a_row, out_row) in a_band.chunks(k).zip(out_band.chunks_mut(n)) {
            for (t, panel) in packed.chunks_exact(k * NR).enumerate() {
                let jt = t * NR;
                let nw = NR.min(n - jt);
                micro_tile_1(a_row, panel, jt, nw, ep, out_row);
            }
        }
    }
}

/// Accumulate one `4×nw` tile (`nw <= NR`) and store it through the
/// epilogue. The four accumulator arrays stay in registers across the
/// whole `k` loop.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn micro_tile_4(
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    panel: &[f32],
    jt: usize,
    nw: usize,
    ep: Epilogue<'_>,
    o0: &mut [f32],
    o1: &mut [f32],
    o2: &mut [f32],
    o3: &mut [f32],
) {
    let mut c0 = [0.0f32; NR];
    let mut c1 = [0.0f32; NR];
    let mut c2 = [0.0f32; NR];
    let mut c3 = [0.0f32; NR];
    let lanes = a0.iter().zip(a1).zip(a2).zip(a3).zip(panel.chunks_exact(NR));
    for ((((&x0, &x1), &x2), &x3), bs) in lanes {
        fma_lane(&mut c0, x0, bs);
        fma_lane(&mut c1, x1, bs);
        fma_lane(&mut c2, x2, bs);
        fma_lane(&mut c3, x3, bs);
    }
    store_tile(o0, jt, nw, &c0, ep);
    store_tile(o1, jt, nw, &c1, ep);
    store_tile(o2, jt, nw, &c2, ep);
    store_tile(o3, jt, nw, &c3, ep);
}

/// Accumulate one `1×nw` tile — the remainder-row path.
#[inline(always)]
fn micro_tile_1(
    a_row: &[f32],
    panel: &[f32],
    jt: usize,
    nw: usize,
    ep: Epilogue<'_>,
    out_row: &mut [f32],
) {
    let mut acc = [0.0f32; NR];
    for (&x, bs) in a_row.iter().zip(panel.chunks_exact(NR)) {
        fma_lane(&mut acc, x, bs);
    }
    store_tile(out_row, jt, nw, &acc, ep);
}

/// `acc[j] += x * bs[j]` across the tile lanes. The fixed-size fast path
/// tells LLVM the trip count is exactly `NR` so the lane loop unrolls and
/// vectorises; packed panels are always `NR` wide (zero-padded), so the
/// variable-length tail is defensive only.
#[inline(always)]
fn fma_lane(acc: &mut [f32; NR], x: f32, bs: &[f32]) {
    if let Ok(full) = <&[f32; NR]>::try_from(bs) {
        for (av, bv) in acc.iter_mut().zip(full) {
            *av += x * *bv;
        }
    } else {
        for (av, &bv) in acc.iter_mut().zip(bs) {
            *av += x * bv;
        }
    }
}

/// Runtime-detected AVX2+FMA fast path for the full-band micro-kernel.
/// Same four accumulators and the same strictly ascending `k` order as the
/// scalar [`micro_tile_4`]; the only numerical difference is one rounding
/// per update instead of two (see the module docs). The path is chosen by
/// a CPU probe cached in an atomic, never by data or scheduling, so the
/// bit-identity guarantees are unchanged on any given machine.
#[cfg(target_arch = "x86_64")]
mod fma {
    use super::{store_tile, Epilogue, NR};
    use std::arch::x86_64::{
        _mm256_broadcast_ss, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    use std::sync::atomic::{AtomicU8, Ordering};

    /// 0 = unprobed, 1 = available, 2 = unavailable.
    static AVAILABLE: AtomicU8 = AtomicU8::new(0);

    /// Whether this CPU supports AVX2 and FMA (probed once, then cached).
    pub(super) fn available() -> bool {
        match AVAILABLE.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => {
                let yes = std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma");
                AVAILABLE.store(if yes { 1 } else { 2 }, Ordering::Relaxed);
                yes
            }
        }
    }

    /// Vector twin of the scalar `micro_tile_4`: four `__m256`
    /// accumulators (one per output row, [`NR`] == 8 lanes each), one
    /// packed panel row load shared across the four FMAs per `k` step.
    ///
    /// # Safety
    ///
    /// Caller must have checked [`available`]. Slice lengths are clamped
    /// to the shortest operand before any raw-pointer walk, so the bounds
    /// contract is re-established locally.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn micro_tile_4(
        a0: &[f32],
        a1: &[f32],
        a2: &[f32],
        a3: &[f32],
        panel: &[f32],
        jt: usize,
        nw: usize,
        ep: Epilogue<'_>,
        o0: &mut [f32],
        o1: &mut [f32],
        o2: &mut [f32],
        o3: &mut [f32],
    ) {
        let depth = a0.len().min(a1.len()).min(a2.len()).min(a3.len()).min(panel.len() / NR);
        let mut c0 = _mm256_setzero_ps();
        let mut c1 = _mm256_setzero_ps();
        let mut c2 = _mm256_setzero_ps();
        let mut c3 = _mm256_setzero_ps();
        let mut pa0 = a0.as_ptr();
        let mut pa1 = a1.as_ptr();
        let mut pa2 = a2.as_ptr();
        let mut pa3 = a3.as_ptr();
        let mut pb = panel.as_ptr();
        for _ in 0..depth {
            let bs = _mm256_loadu_ps(pb);
            c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*pa0), bs, c0);
            c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*pa1), bs, c1);
            c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*pa2), bs, c2);
            c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*pa3), bs, c3);
            pa0 = pa0.add(1);
            pa1 = pa1.add(1);
            pa2 = pa2.add(1);
            pa3 = pa3.add(1);
            pb = pb.add(NR);
        }
        let mut t0 = [0.0f32; NR];
        let mut t1 = [0.0f32; NR];
        let mut t2 = [0.0f32; NR];
        let mut t3 = [0.0f32; NR];
        _mm256_storeu_ps(t0.as_mut_ptr(), c0);
        _mm256_storeu_ps(t1.as_mut_ptr(), c1);
        _mm256_storeu_ps(t2.as_mut_ptr(), c2);
        _mm256_storeu_ps(t3.as_mut_ptr(), c3);
        store_tile(o0, jt, nw, &t0, ep);
        store_tile(o1, jt, nw, &t1, ep);
        store_tile(o2, jt, nw, &t2, ep);
        store_tile(o3, jt, nw, &t3, ep);
    }
}

/// Write one finished accumulator tile into `out_row[jt..jt+nw]` through
/// the epilogue.
#[inline(always)]
fn store_tile(out_row: &mut [f32], jt: usize, nw: usize, acc: &[f32; NR], ep: Epilogue<'_>) {
    let Some(seg) = out_row.get_mut(jt..jt + nw) else {
        return;
    };
    match ep {
        Epilogue::None => {
            for (o, &v) in seg.iter_mut().zip(acc) {
                *o = v;
            }
        }
        Epilogue::Relu => {
            for (o, &v) in seg.iter_mut().zip(acc) {
                *o = v.max(0.0);
            }
        }
        Epilogue::Bias(bias) => {
            let Some(bseg) = bias.get(jt..jt + nw) else {
                return;
            };
            for ((o, &v), &bv) in seg.iter_mut().zip(acc).zip(bseg) {
                *o = v + bv;
            }
        }
        Epilogue::BiasRelu(bias) => {
            let Some(bseg) = bias.get(jt..jt + nw) else {
                return;
            };
            for ((o, &v), &bv) in seg.iter_mut().zip(acc).zip(bseg) {
                *o = (v + bv).max(0.0);
            }
        }
    }
}

/// Apply an epilogue to one already-accumulated output row (the reference
/// kernel finishes whole rows at a time).
#[inline]
fn epilogue_row(row: &mut [f32], ep: Epilogue<'_>) {
    match ep {
        Epilogue::None => {}
        Epilogue::Relu => {
            for v in row.iter_mut() {
                *v = (*v).max(0.0);
            }
        }
        Epilogue::Bias(bias) => {
            for (v, &bv) in row.iter_mut().zip(bias) {
                *v += bv;
            }
        }
        Epilogue::BiasRelu(bias) => {
            for (v, &bv) in row.iter_mut().zip(bias) {
                *v = (*v + bv).max(0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(len: usize, scale: f32) -> Vec<f32> {
        (0..len).map(|i| ((i * 37 % 23) as f32 - 11.0) * scale).collect()
    }

    fn run(
        mode: KernelMode,
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        ep: Epilogue<'_>,
    ) -> Vec<f32> {
        let mut out = Vec::new();
        matmul_into(mode, a, b, m, k, n, ep, &mut out);
        out
    }

    #[test]
    fn parse_and_display_round_trip() {
        assert_eq!(KernelMode::parse("blocked"), Some(KernelMode::Blocked));
        assert_eq!(KernelMode::parse(" reference "), Some(KernelMode::Reference));
        assert_eq!(KernelMode::parse("naive"), None);
        assert_eq!(KernelMode::Blocked.to_string(), "blocked");
        assert_eq!(KernelMode::Reference.to_string(), "reference");
    }

    #[test]
    fn blocked_matches_reference_across_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (4, 4, 8), (5, 7, 9), (13, 6, 17), (8, 16, 8)] {
            let a = seq(m * k, 0.25);
            let b = seq(k * n, 0.5);
            let r = run(KernelMode::Reference, &a, &b, m, k, n, Epilogue::None);
            let bl = run(KernelMode::Blocked, &a, &b, m, k, n, Epilogue::None);
            for (x, y) in r.iter().zip(&bl) {
                assert!((x - y).abs() <= 1e-5 * x.abs().max(1.0), "{m}x{k}x{n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn known_2x2_product() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        for mode in [KernelMode::Blocked, KernelMode::Reference] {
            assert_eq!(run(mode, &a, &b, 2, 2, 2, Epilogue::None), vec![19.0, 22.0, 43.0, 50.0]);
        }
    }

    #[test]
    fn fused_epilogues_match_separate_passes_bitwise() {
        let (m, k, n) = (9, 5, 11);
        let a = seq(m * k, 0.1);
        let b = seq(k * n, 0.3);
        let bias = seq(n, 0.7);
        for mode in [KernelMode::Blocked, KernelMode::Reference] {
            let plain = run(mode, &a, &b, m, k, n, Epilogue::None);
            let mut manual = plain.clone();
            for row in manual.chunks_mut(n) {
                for (v, &bv) in row.iter_mut().zip(&bias) {
                    *v += bv;
                }
            }
            let fused = run(mode, &a, &b, m, k, n, Epilogue::Bias(&bias));
            assert_eq!(fused, manual, "{mode}: bias epilogue diverged");
            for v in manual.iter_mut() {
                *v = v.max(0.0);
            }
            let fused_relu = run(mode, &a, &b, m, k, n, Epilogue::BiasRelu(&bias));
            assert_eq!(fused_relu, manual, "{mode}: bias+relu epilogue diverged");
            let mut relu_only = plain;
            for v in relu_only.iter_mut() {
                *v = v.max(0.0);
            }
            assert_eq!(run(mode, &a, &b, m, k, n, Epilogue::Relu), relu_only);
        }
    }

    #[test]
    fn degenerate_dims() {
        for mode in [KernelMode::Blocked, KernelMode::Reference] {
            assert!(run(mode, &[], &[], 0, 3, 4, Epilogue::None).is_empty());
            assert!(run(mode, &[], &[], 3, 4, 0, Epilogue::None).is_empty());
            // k == 0: all-zero product, but the epilogue still applies.
            let bias = [1.5, -2.0];
            let out = run(mode, &[], &[], 2, 0, 2, Epilogue::BiasRelu(&bias));
            assert_eq!(out, vec![1.5, 0.0, 1.5, 0.0]);
        }
    }

    #[test]
    fn blocked_is_run_to_run_bit_identical() {
        // Large enough to cross PAR_THRESHOLD and engage rayon.
        let (m, k, n) = (70, 33, 260);
        let a = seq(m * k, 0.05);
        let b = seq(k * n, 0.02);
        let first = run(KernelMode::Blocked, &a, &b, m, k, n, Epilogue::None);
        for _ in 0..3 {
            let again = run(KernelMode::Blocked, &a, &b, m, k, n, Epilogue::None);
            let same = first.iter().zip(&again).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "blocked kernel varied across runs");
        }
    }

    #[test]
    fn force_overrides_and_restores_mode() {
        let _guard = MODE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Capture the full *backend* kind (not just the kernel-mode view)
        // so restoring cannot clobber an ambient f16 backend to blocked.
        let ambient = crate::backend::backend_kind();
        force_kernel_mode(KernelMode::Reference);
        assert_eq!(kernel_mode(), KernelMode::Reference);
        force_kernel_mode(KernelMode::Blocked);
        assert_eq!(kernel_mode(), KernelMode::Blocked);
        crate::backend::force_backend_kind(ambient);
        assert_eq!(crate::backend::backend_kind(), ambient);
    }
}
