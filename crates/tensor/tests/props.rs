//! Property-based tests of the tensor kernels: algebraic identities that
//! must hold for any shapes/values, and numerical-stability invariants.

use fedcav_tensor::conv::{conv2d_forward, Conv2dParams};
use fedcav_tensor::pool::{maxpool2d_backward, maxpool2d_forward};
use fedcav_tensor::{backend_kind, numerics, BackendKind, Tensor};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len..=len)
}

/// Absolute tolerance for algebraic identities at magnitude `scale`.
/// These tests run against the ambient dispatch backend; on the f16
/// backend intermediate products live on the binary16 grid, so the
/// identity only holds to one f16 ulp (`scale·2⁻¹⁰`) instead of f32
/// round-off.
fn algebra_tol(base: f32, scale: f32) -> f32 {
    if backend_kind() == BackendKind::F16Storage {
        base.max(scale.abs() * 2f32.powi(-10) * 2.0)
    } else {
        base
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // ---------------------------------------------------------- elementwise

    #[test]
    fn add_commutes(v in finite_vec(24), w in finite_vec(24)) {
        let a = Tensor::from_vec(&[4, 6], v).unwrap();
        let b = Tensor::from_vec(&[4, 6], w).unwrap();
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn sub_is_add_of_negation(v in finite_vec(12), w in finite_vec(12)) {
        let a = Tensor::from_vec(&[12], v).unwrap();
        let b = Tensor::from_vec(&[12], w).unwrap();
        let direct = a.sub(&b).unwrap();
        let via_neg = a.add(&b.scale(-1.0)).unwrap();
        for (x, y) in direct.as_slice().iter().zip(via_neg.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn axpy_matches_scale_add(v in finite_vec(16), w in finite_vec(16), k in -5.0f32..5.0) {
        let a = Tensor::from_vec(&[16], v).unwrap();
        let b = Tensor::from_vec(&[16], w).unwrap();
        let mut lhs = a.clone();
        lhs.axpy(k, &b).unwrap();
        let rhs = a.add(&b.scale(k)).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    // --------------------------------------------------------------- matmul

    #[test]
    fn matmul_distributes_over_addition(
        a in finite_vec(6), b in finite_vec(6), c in finite_vec(6)
    ) {
        // A(B + C) = AB + AC for 2x3 x 3x2 matrices.
        let a = Tensor::from_vec(&[2, 3], a).unwrap();
        let b = Tensor::from_vec(&[3, 2], b).unwrap();
        let c = Tensor::from_vec(&[3, 2], c).unwrap();
        let bc = b.add(&c).unwrap();
        let lhs = a.matmul(&bc).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        // The error in a dot product from operand rounding is bounded by
        // the ℓ1 of the products, not the (possibly cancelled) output —
        // so the f16 tolerance must scale with k·‖A‖∞·‖B+C‖∞.
        let inf = |t: &Tensor| t.as_slice().iter().fold(0f32, |m, v| m.max(v.abs()));
        let tol = algebra_tol(0.5, 3.0 * inf(&a) * inf(&bc));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < tol, "{x} vs {y} (tol {tol})");
        }
    }

    #[test]
    fn matmul_transpose_identity(a in finite_vec(6), b in finite_vec(6)) {
        // (AB)^T = B^T A^T.
        let a = Tensor::from_vec(&[2, 3], a).unwrap();
        let b = Tensor::from_vec(&[3, 2], b).unwrap();
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 0.5);
        }
    }

    // ------------------------------------------------------------- numerics

    #[test]
    fn softmax_is_distribution(v in proptest::collection::vec(-50.0f32..50.0, 1..30)) {
        let s = numerics::softmax(&v);
        prop_assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(s.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
    }

    #[test]
    fn logsumexp_shift_identity(
        v in proptest::collection::vec(-50.0f32..50.0, 1..30),
        c in -100.0f32..100.0,
    ) {
        // logsumexp(x + c) = logsumexp(x) + c.
        let shifted: Vec<f32> = v.iter().map(|x| x + c).collect();
        let lhs = numerics::logsumexp(&shifted);
        let rhs = numerics::logsumexp(&v) + c;
        prop_assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn cross_entropy_nonnegative(
        v in finite_vec(30),
        labels in proptest::collection::vec(0usize..10, 3..=3),
    ) {
        let logits = Tensor::from_vec(&[3, 10], v).unwrap();
        let l = numerics::cross_entropy_mean(&logits, &labels).unwrap();
        prop_assert!(l >= -1e-5, "CE must be non-negative, got {l}");
    }

    #[test]
    fn accuracy_bounded(
        v in finite_vec(20),
        labels in proptest::collection::vec(0usize..5, 4..=4),
    ) {
        let logits = Tensor::from_vec(&[4, 5], v).unwrap();
        let a = numerics::accuracy(&logits, &labels).unwrap();
        prop_assert!((0.0..=1.0).contains(&a));
    }

    // ------------------------------------------------------------ conv/pool

    #[test]
    fn conv_is_linear_in_input(
        x in finite_vec(2 * 16), y in finite_vec(2 * 16), k in -2.0f32..2.0
    ) {
        // conv(x + k*y) = conv(x) + k*conv(y) with fixed weights.
        let x = Tensor::from_vec(&[2, 1, 4, 4], x).unwrap();
        let y = Tensor::from_vec(&[2, 1, 4, 4], y).unwrap();
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let b = Tensor::zeros(&[1]);
        let p = Conv2dParams { stride: 1, padding: 1 };
        let mixed = x.add(&y.scale(k)).unwrap();
        let lhs = conv2d_forward(&mixed, &w, &b, p).unwrap();
        let rhs = conv2d_forward(&x, &w, &b, p).unwrap()
            .add(&conv2d_forward(&y, &w, &b, p).unwrap().scale(k)).unwrap();
        for (a_, b_) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((a_ - b_).abs() < 0.1, "{a_} vs {b_}");
        }
    }

    #[test]
    fn maxpool_output_bounded_by_input(v in finite_vec(16)) {
        let x = Tensor::from_vec(&[1, 1, 4, 4], v.clone()).unwrap();
        let out = maxpool2d_forward(&x, 2).unwrap();
        let max_in = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for &o in out.output.as_slice() {
            prop_assert!(o <= max_in + 1e-6);
            prop_assert!(v.contains(&o), "pool output must be an input element");
        }
    }

    #[test]
    fn maxpool_backward_conserves_gradient_mass(v in finite_vec(16), g in finite_vec(4)) {
        let x = Tensor::from_vec(&[1, 1, 4, 4], v).unwrap();
        let fwd = maxpool2d_forward(&x, 2).unwrap();
        let d_out = Tensor::from_vec(&[1, 1, 2, 2], g.clone()).unwrap();
        let dx = maxpool2d_backward(&[1, 1, 4, 4], &fwd.argmax, &d_out).unwrap();
        let mass_out: f32 = g.iter().sum();
        let mass_in: f32 = dx.as_slice().iter().sum();
        prop_assert!((mass_out - mass_in).abs() < 1e-3);
    }

    // -------------------------------------------------------------- reshape

    #[test]
    fn reshape_preserves_data(v in finite_vec(24)) {
        let a = Tensor::from_vec(&[2, 3, 4], v.clone()).unwrap();
        let b = a.reshape(&[6, 4]).unwrap().reshape(&[24]).unwrap();
        prop_assert_eq!(b.as_slice(), &v[..]);
    }

    #[test]
    fn gather_rows_picks_exact_rows(
        v in finite_vec(20),
        idx in proptest::collection::vec(0usize..5, 1..8),
    ) {
        let a = Tensor::from_vec(&[5, 4], v.clone()).unwrap();
        let g = a.gather_rows(&idx).unwrap();
        for (row_out, &i) in g.as_slice().chunks(4).zip(&idx) {
            prop_assert_eq!(row_out, &v[i * 4..(i + 1) * 4]);
        }
    }
}
