//! `fedcav-analyze`: lint the workspace.
//!
//! ```text
//! fedcav-analyze [ROOT] [--deny] [--json] [--json-out PATH] [--list-rules]
//!                [--baseline PATH] [--write-baseline PATH]
//! ```
//!
//! * `ROOT` — directory to walk (default: the workspace root containing
//!   this crate, else the current directory).
//! * `--deny` — exit 1 if any non-baselined finding is produced (CI mode).
//! * `--json` — print findings as a JSON array instead of human lines.
//! * `--json-out PATH` — additionally write the JSON report to `PATH`.
//! * `--list-rules` — print the registered rules and exit.
//! * `--baseline PATH` — tolerate the legacy findings listed in `PATH`
//!   (see [`fedcav_analyze::baseline`]). When the flag is absent,
//!   `ROOT/analyze-baseline.json` is loaded if it exists.
//! * `--write-baseline PATH` — write the current findings as a baseline
//!   file (reasons stamped `TODO` — justify each before committing).
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 new findings
//! under `--deny`, 2 usage or IO error (including an unparseable
//! baseline: a ratchet that cannot be read must not silently admit
//! findings).

use fedcav_analyze::{render_json, walk_rs_files, Baseline, Config, Engine};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    deny: bool,
    json: bool,
    json_out: Option<PathBuf>,
    list_rules: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn default_root() -> PathBuf {
    // When run via `cargo run -p fedcav-analyze`, the workspace root is two
    // levels above this crate's manifest; fall back to cwd otherwise.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: default_root(),
        deny: false,
        json: false,
        json_out: None,
        list_rules: false,
        baseline: None,
        write_baseline: None,
    };
    let mut args = std::env::args().skip(1);
    let mut root_set = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--json-out" => {
                let p = args.next().ok_or("--json-out requires a path")?;
                opts.json_out = Some(PathBuf::from(p));
            }
            "--list-rules" => opts.list_rules = true,
            "--baseline" => {
                let p = args.next().ok_or("--baseline requires a path")?;
                opts.baseline = Some(PathBuf::from(p));
            }
            "--write-baseline" => {
                let p = args.next().ok_or("--write-baseline requires a path")?;
                opts.write_baseline = Some(PathBuf::from(p));
            }
            "--help" | "-h" => return Err("help".to_string()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => {
                if root_set {
                    return Err(format!("unexpected extra argument `{path}`"));
                }
                opts.root = PathBuf::from(path);
                root_set = true;
            }
        }
    }
    Ok(opts)
}

const USAGE: &str = "usage: fedcav-analyze [ROOT] [--deny] [--json] [--json-out PATH] \
                     [--list-rules] [--baseline PATH] [--write-baseline PATH]";

/// The baseline file CI commits at the workspace root.
const DEFAULT_BASELINE: &str = "analyze-baseline.json";

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) if e == "help" => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("fedcav-analyze: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let engine = Engine::with_default_rules(Config::fedcav_default());

    if opts.list_rules {
        for (name, desc) in engine.rule_list() {
            println!("{name}\n    {desc}");
        }
        return ExitCode::SUCCESS;
    }

    if !opts.root.is_dir() {
        eprintln!("fedcav-analyze: `{}` is not a directory", opts.root.display());
        return ExitCode::from(2);
    }

    // Load the ratchet: explicit --baseline must exist and parse; the
    // implicit root baseline is used only when present.
    let baseline_path = opts
        .baseline
        .clone()
        .or_else(|| Some(opts.root.join(DEFAULT_BASELINE)).filter(|p| p.is_file()));
    let baseline = match &baseline_path {
        Some(p) => match std::fs::read_to_string(p).map_err(|e| e.to_string()).and_then(|s| {
            Baseline::parse(&s)
        }) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("fedcav-analyze: baseline {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        None => Baseline::empty(),
    };

    let (files, walk_errors) = walk_rs_files(&opts.root);
    let (diags, read_errors) = engine.lint_files(&opts.root, &files);

    let mut io_failed = false;
    for e in walk_errors.iter().chain(&read_errors) {
        eprintln!("fedcav-analyze: io error: {e}");
        io_failed = true;
    }

    if let Some(path) = &opts.write_baseline {
        if let Err(e) = std::fs::write(path, Baseline::render(&diags)) {
            eprintln!("fedcav-analyze: cannot write {}: {e}", path.display());
            io_failed = true;
        } else {
            eprintln!(
                "fedcav-analyze: wrote {} entr{} to {} — replace each TODO reason before \
                 committing",
                diags.len(),
                if diags.len() == 1 { "y" } else { "ies" },
                path.display()
            );
        }
    }

    let outcome = baseline.apply(diags.clone());

    if opts.json {
        println!("{}", render_json(&outcome.new));
    } else {
        for d in &outcome.new {
            println!("{}", d.human());
        }
        for (i, d) in &outcome.legacy {
            eprintln!(
                "fedcav-analyze: tolerated (baseline: {}): {}",
                baseline.entries[*i].reason,
                d.human()
            );
        }
        eprintln!(
            "fedcav-analyze: {} file(s) checked, {} finding(s) ({} new, {} baselined)",
            files.len(),
            diags.len(),
            outcome.new.len(),
            outcome.legacy.len()
        );
    }
    for i in &outcome.stale {
        let e = &baseline.entries[*i];
        eprintln!(
            "fedcav-analyze: stale baseline entry ({} in {}): matched nothing — delete it",
            e.rule, e.file
        );
    }
    // The full (pre-baseline) report is the CI artifact: it must show
    // everything, tolerated or not.
    if let Some(path) = &opts.json_out {
        if let Err(e) = std::fs::write(path, render_json(&diags) + "\n") {
            eprintln!("fedcav-analyze: cannot write {}: {e}", path.display());
            io_failed = true;
        }
    }

    if io_failed {
        ExitCode::from(2)
    } else if opts.deny && !outcome.new.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
