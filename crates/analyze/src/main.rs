//! `fedcav-analyze`: lint the workspace.
//!
//! ```text
//! fedcav-analyze [ROOT] [--deny] [--json] [--json-out PATH] [--list-rules]
//! ```
//!
//! * `ROOT` — directory to walk (default: the workspace root containing
//!   this crate, else the current directory).
//! * `--deny` — exit 1 if any finding is produced (CI mode).
//! * `--json` — print findings as a JSON array instead of human lines.
//! * `--json-out PATH` — additionally write the JSON report to `PATH`.
//! * `--list-rules` — print the registered rules and exit.
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 findings under
//! `--deny`, 2 usage or IO error.

use fedcav_analyze::{render_json, walk_rs_files, Config, Engine};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    deny: bool,
    json: bool,
    json_out: Option<PathBuf>,
    list_rules: bool,
}

fn default_root() -> PathBuf {
    // When run via `cargo run -p fedcav-analyze`, the workspace root is two
    // levels above this crate's manifest; fall back to cwd otherwise.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn parse_args() -> Result<Opts, String> {
    let mut opts =
        Opts { root: default_root(), deny: false, json: false, json_out: None, list_rules: false };
    let mut args = std::env::args().skip(1);
    let mut root_set = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--json-out" => {
                let p = args.next().ok_or("--json-out requires a path")?;
                opts.json_out = Some(PathBuf::from(p));
            }
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => return Err("help".to_string()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => {
                if root_set {
                    return Err(format!("unexpected extra argument `{path}`"));
                }
                opts.root = PathBuf::from(path);
                root_set = true;
            }
        }
    }
    Ok(opts)
}

const USAGE: &str =
    "usage: fedcav-analyze [ROOT] [--deny] [--json] [--json-out PATH] [--list-rules]";

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) if e == "help" => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("fedcav-analyze: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let engine = Engine::with_default_rules(Config::fedcav_default());

    if opts.list_rules {
        for (name, desc) in engine.rule_list() {
            println!("{name}\n    {desc}");
        }
        return ExitCode::SUCCESS;
    }

    if !opts.root.is_dir() {
        eprintln!("fedcav-analyze: `{}` is not a directory", opts.root.display());
        return ExitCode::from(2);
    }

    let (files, walk_errors) = walk_rs_files(&opts.root);
    let (diags, read_errors) = engine.lint_files(&opts.root, &files);

    let mut io_failed = false;
    for e in walk_errors.iter().chain(&read_errors) {
        eprintln!("fedcav-analyze: io error: {e}");
        io_failed = true;
    }

    if opts.json {
        println!("{}", render_json(&diags));
    } else {
        for d in &diags {
            println!("{}", d.human());
        }
        eprintln!("fedcav-analyze: {} file(s) checked, {} finding(s)", files.len(), diags.len());
    }
    if let Some(path) = &opts.json_out {
        if let Err(e) = std::fs::write(path, render_json(&diags) + "\n") {
            eprintln!("fedcav-analyze: cannot write {}: {e}", path.display());
            io_failed = true;
        }
    }

    if io_failed {
        ExitCode::from(2)
    } else if opts.deny && !diags.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
