//! The determinism auditor: a rule family flagging nondeterminism sources
//! in bit-identity-contracted code.
//!
//! The reproduction's central guarantees are bitwise: Eq. 9 contribution
//! weights identical across the materialized, streaming, and parallel
//! aggregation paths; blocked kernels identical across runs and thread
//! counts. Those proofs assume the code they cover is *deterministic* —
//! no iteration order borrowed from a hash table, no wall-clock value
//! feeding a computation, no thread spawned outside the executor's
//! deterministic fold, no environment read outside the sanctioned
//! `FEDCAV_*` override points. Each rule here flags one nondeterminism
//! source, scoped — like `no-panic-in-round-loop` — to the functions the
//! workspace call graph marks reachable from the round-loop roots.
//!
//! * [`HashIterationOrder`] — iterating a `HashMap`/`HashSet` (`.iter()`,
//!   `.keys()`, `.values()`, `.drain()`, `.retain()`, `for … in &map`)
//!   observes `RandomState` order. Keyed access (`.get`, `.entry`,
//!   `.insert`, `.contains_key`, `.remove`) stays legal.
//! * [`WallclockInRoundLoop`] — `Instant::now`/`SystemTime::now` outside
//!   `fedcav-trace`. Telemetry-only reads at sanctioned sites carry an
//!   inline allow comment with a reason.
//! * [`SpawnOutsideExecutor`] — `thread::spawn`/`thread::scope` anywhere
//!   but `fl::executor`, whose index-keyed fold is the one proven
//!   bit-identical to sequential execution.
//! * [`EnvReadOutsideOverride`] — `env::var` outside the sanctioned
//!   override points (`FEDCAV_EXECUTOR` in `fl::executor`,
//!   `FEDCAV_BACKEND` and its deprecated `FEDCAV_KERNELS` alias in
//!   `tensor::backend`): configuration must flow through constructors,
//!   not ambient process state.

use super::{WorkspaceContext, WorkspaceRule};
use crate::diagnostics::{Diagnostic, Severity};
use crate::lexer::{Token, TokenKind};

/// Iteration-order methods on hash collections. Keyed accessors are
/// deliberately absent.
const ITER_METHODS: [&str; 8] =
    ["iter", "iter_mut", "keys", "values", "values_mut", "drain", "into_iter", "retain"];

/// Collect the identifiers in `code` (a whole file) that are declared with
/// a `HashMap`/`HashSet` type: field or binding ascriptions
/// (`name: HashMap<…>`, `name: &mut HashSet<…>`) and initializer bindings
/// (`let name = HashMap::new()`).
fn hash_typed_names(code: &[&Token]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over the path prefix (`std :: collections ::`).
        let mut j = i;
        while j >= 2
            && code[j - 1].is_punct(':')
            && code[j - 2].is_punct(':')
        {
            if j >= 3 && code[j - 3].kind == TokenKind::Ident {
                j -= 3;
            } else {
                break;
            }
        }
        // Ascription: `name : [& mut] <path>`.
        let mut k = j;
        while k >= 1 && (code[k - 1].is_punct('&') || code[k - 1].is_ident("mut")) {
            k -= 1;
        }
        if k >= 2 && code[k - 1].is_punct(':') && !code.get(k.wrapping_sub(2)).is_some_and(|p| p.is_punct(':')) {
            if let Some(name) = code.get(k - 2).filter(|n| n.kind == TokenKind::Ident) {
                names.push(name.text.clone());
                continue;
            }
        }
        // Initializer: `let [mut] name = HashMap :: …`.
        if j >= 2 && code[j - 1].is_punct('=') {
            if let Some(name) = code.get(j - 2).filter(|n| n.kind == TokenKind::Ident) {
                names.push(name.text.clone());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// See the module docs.
pub struct HashIterationOrder;

impl WorkspaceRule for HashIterationOrder {
    fn name(&self) -> &'static str {
        "hash-iteration-order"
    }

    fn description(&self) -> &'static str {
        "no HashMap/HashSet iteration in round-loop-reachable code: RandomState order \
         leaks into float accumulation; keyed lookup is fine, iteration needs a \
         sorted/Vec-backed structure"
    }

    fn check(&self, ctx: &WorkspaceContext<'_>, out: &mut Vec<Diagnostic>) {
        for (key, root) in ctx.reachable() {
            let wf = &ctx.ws.files[key.0];
            let item = &wf.fns[key.1];
            let Some((lo, hi)) = item.body else { continue };
            let code = wf.source.code();
            let names = hash_typed_names(&code);
            if names.is_empty() {
                continue;
            }
            let via = ctx.provenance(key, root);
            let body = &code[lo..hi];
            for (i, t) in body.iter().enumerate() {
                if t.kind != TokenKind::Ident || !names.iter().any(|n| n == &t.text) {
                    continue;
                }
                // `name.iter()` / `self.name.keys()` …
                if body.get(i + 1).is_some_and(|p| p.is_punct('.'))
                    && body
                        .get(i + 2)
                        .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
                    && body.get(i + 3).is_some_and(|p| p.is_punct('('))
                {
                    let m = &body[i + 2];
                    out.push(self.diag(
                        &wf.source.path,
                        m,
                        format!(
                            "`{}.{}()` iterates a hash collection in RandomState order \
                             [{via}]",
                            t.text, m.text
                        ),
                    ));
                }
                // `for pat in [&][mut] [self.]name { …`
                if body.get(i + 1).is_some_and(|p| p.is_punct('{')) {
                    let mut k = i;
                    while k >= 1
                        && (body[k - 1].is_punct('&')
                            || body[k - 1].is_ident("mut")
                            || body[k - 1].is_punct('.')
                            || body[k - 1].is_ident("self"))
                    {
                        k -= 1;
                    }
                    if k >= 1 && body[k - 1].is_ident("in") {
                        out.push(self.diag(
                            &wf.source.path,
                            t,
                            format!(
                                "`for … in {}` iterates a hash collection in RandomState \
                                 order [{via}]",
                                t.text
                            ),
                        ));
                    }
                }
            }
        }
    }
}

impl HashIterationOrder {
    fn diag(&self, file: &str, at: &Token, message: String) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line: at.line,
            col: at.col,
            rule: self.name(),
            severity: Severity::Error,
            message,
        }
    }
}

/// Scan one reachable body for `Qualifier::method(` patterns and report.
fn scan_path_calls(
    ctx: &WorkspaceContext<'_>,
    rule: &'static str,
    heads: &[&str],
    methods: &[&str],
    describe: &str,
    out: &mut Vec<Diagnostic>,
) {
    for (key, root) in ctx.reachable() {
        let wf = &ctx.ws.files[key.0];
        let item = &wf.fns[key.1];
        let Some((lo, hi)) = item.body else { continue };
        let code = wf.source.code();
        let via = ctx.provenance(key, root);
        let body = &code[lo..hi];
        for (i, t) in body.iter().enumerate() {
            if t.kind == TokenKind::Ident
                && heads.contains(&t.text.as_str())
                && body.get(i + 1).is_some_and(|p| p.is_punct(':'))
                && body.get(i + 2).is_some_and(|p| p.is_punct(':'))
                && body.get(i + 3).is_some_and(|m| {
                    m.kind == TokenKind::Ident && methods.contains(&m.text.as_str())
                })
            {
                let m = &body[i + 3];
                out.push(Diagnostic {
                    file: wf.source.path.clone(),
                    line: t.line,
                    col: t.col,
                    rule,
                    severity: Severity::Error,
                    message: format!("`{}::{}` {describe} [{via}]", t.text, m.text),
                });
            }
        }
    }
}

/// See the module docs.
pub struct WallclockInRoundLoop;

impl WorkspaceRule for WallclockInRoundLoop {
    fn name(&self) -> &'static str {
        "wallclock-in-round-loop"
    }

    fn description(&self) -> &'static str {
        "no Instant::now/SystemTime::now in round-loop-reachable code outside \
         fedcav-trace: wall-clock values must feed telemetry, never the model"
    }

    fn check(&self, ctx: &WorkspaceContext<'_>, out: &mut Vec<Diagnostic>) {
        scan_path_calls(
            ctx,
            self.name(),
            &["Instant", "SystemTime"],
            &["now"],
            "reads the wall clock inside bit-identity-contracted code; route timing \
             through fedcav-trace spans, or allow with a telemetry-only reason",
            out,
        );
    }
}

/// See the module docs.
pub struct SpawnOutsideExecutor;

impl WorkspaceRule for SpawnOutsideExecutor {
    fn name(&self) -> &'static str {
        "spawn-outside-executor"
    }

    fn description(&self) -> &'static str {
        "no thread::spawn/thread::scope in round-loop-reachable code outside \
         fl::executor: parallelism is only bit-identical under the executor's \
         index-keyed fold"
    }

    fn check(&self, ctx: &WorkspaceContext<'_>, out: &mut Vec<Diagnostic>) {
        scan_path_calls(
            ctx,
            self.name(),
            &["thread"],
            &["spawn", "scope", "Builder"],
            "spawns threads outside the deterministic client executor; results folded \
             off the executor's index-keyed queue are the only parallelism proven \
             bit-identical",
            out,
        );
    }
}

/// See the module docs.
pub struct EnvReadOutsideOverride;

impl WorkspaceRule for EnvReadOutsideOverride {
    fn name(&self) -> &'static str {
        "env-read-outside-override"
    }

    fn description(&self) -> &'static str {
        "no env::var in round-loop-reachable code outside the sanctioned FEDCAV_* \
         override points (fl::executor, tensor::backend): configuration flows through \
         constructors, not ambient process state"
    }

    fn check(&self, ctx: &WorkspaceContext<'_>, out: &mut Vec<Diagnostic>) {
        scan_path_calls(
            ctx,
            self.name(),
            &["env"],
            &["var", "var_os", "vars", "vars_os"],
            "reads the process environment mid-computation; only the documented \
             FEDCAV_* override points may consult env, at init, in their own files",
            out,
        );
    }
}
