//! `raw-exp-ln`: unclipped exponentials are exactly the Eq. 9 hijack.
//!
//! FedCav's aggregation weights are `softmax(clip(f))` (Eq. 9 + Alg. 1
//! line 7): the paper clips losses at their mean and the softmax subtracts
//! the max *because* a bare `exp()` of a large reported loss overflows to
//! `inf` and hands one client the entire aggregation weight. All loss-space
//! exp/ln therefore lives in `fedcav-tensor::numerics` (logsumexp, stable
//! softmax, cross-entropy), and any bare `.exp()`/`.ln()` elsewhere must
//! justify itself with an inline allow — either it is not loss-space math
//! at all (samplers, entropy diagnostics) or it belongs in `numerics`.

use super::{Rule, SourceFile};
use crate::diagnostics::{Diagnostic, Severity};
use crate::lexer::Token;

/// See the module docs.
pub struct RawExpLn;

impl Rule for RawExpLn {
    fn name(&self) -> &'static str {
        "raw-exp-ln"
    }

    fn description(&self) -> &'static str {
        "no bare .exp()/.ln() outside fedcav-tensor::numerics: unclipped exp of a \
         reported loss is the aggregation-weight hijack the paper clips against"
    }

    fn check(&self, file: &SourceFile, code: &[&Token], out: &mut Vec<Diagnostic>) {
        for (i, t) in code.iter().enumerate() {
            if !t.is_punct('.') {
                continue;
            }
            let Some(name) = code.get(i + 1) else { continue };
            if !(name.is_ident("exp") || name.is_ident("ln")) {
                continue;
            }
            if !code.get(i + 2).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            out.push(Diagnostic {
                file: file.path.clone(),
                line: name.line,
                col: name.col,
                rule: self.name(),
                severity: Severity::Error,
                message: format!(
                    "bare `.{}()` outside the sanctioned numerics module; route loss-space \
                     math through fedcav_tensor::numerics (logsumexp/softmax) or allow with \
                     a reason why this cannot overflow/poison weights",
                    name.text
                ),
            });
        }
    }
}
