//! `no-debug-output`: library crates stay silent.
//!
//! A `println!`/`dbg!` left in a library crate corrupts the bench
//! harnesses' machine-readable TSV output (everything under `crates/bench`
//! parses stdout) and leaks into every downstream binary. Reporting
//! belongs to the bench/output layer and to binaries; libraries return
//! data or record trace events.

use super::{Rule, SourceFile};
use crate::diagnostics::{Diagnostic, Severity};
use crate::lexer::{Token, TokenKind};

/// See the module docs.
pub struct NoDebugOutput;

const OUTPUT_MACROS: [&str; 5] = ["println", "print", "eprintln", "eprint", "dbg"];

impl Rule for NoDebugOutput {
    fn name(&self) -> &'static str {
        "no-debug-output"
    }

    fn description(&self) -> &'static str {
        "no println!/eprintln!/dbg! in library crates: stdout belongs to the bench \
         harness and binaries; libraries return data or emit trace events"
    }

    fn check(&self, file: &SourceFile, code: &[&Token], out: &mut Vec<Diagnostic>) {
        for (i, t) in code.iter().enumerate() {
            if t.kind == TokenKind::Ident
                && OUTPUT_MACROS.contains(&t.text.as_str())
                && code.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    rule: self.name(),
                    severity: Severity::Error,
                    message: format!(
                        "`{}!` in a library crate; return the value, or record a \
                         fedcav-trace event instead",
                        t.text
                    ),
                });
            }
        }
    }
}
