//! The rule framework: parsed source files, the per-file [`Rule`] trait,
//! the semantic [`WorkspaceRule`] trait, and configuration.

mod debug_output;
mod determinism;
mod float_cmp;
mod no_panic;
mod raw_exp_ln;

pub use debug_output::NoDebugOutput;
pub use determinism::{
    EnvReadOutsideOverride, HashIterationOrder, SpawnOutsideExecutor, WallclockInRoundLoop,
};
pub use float_cmp::UncheckedFloatCmp;
pub use no_panic::{scan_panic_sites, NoPanicInRoundLoop};
pub use raw_exp_ln::RawExpLn;

use crate::callgraph::{CallGraph, FnKey, Workspace};
use crate::diagnostics::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};
use crate::suppress::{self, Suppression};

/// A lexed source file plus the derived facts rules need: which lines are
/// test code, and which suppressions are in force.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Every token, comments included.
    pub tokens: Vec<Token>,
    /// Suppressions found in comments.
    pub suppressions: Vec<Suppression>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` / `#[test]` items.
    test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lex and pre-analyze a file. The returned diagnostics are malformed
    /// suppression comments (`bad-suppression`).
    pub fn parse(path: &str, src: &str) -> (SourceFile, Vec<Diagnostic>) {
        let tokens = lex(src);
        let (suppressions, diags) = suppress::scan(path, &tokens);
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let test_ranges = test_ranges(&code);
        (SourceFile { path: path.to_string(), tokens, suppressions, test_ranges }, diags)
    }

    /// The non-comment tokens, in order (what rule matchers scan).
    pub fn code(&self) -> Vec<&Token> {
        self.tokens.iter().filter(|t| !t.is_comment()).collect()
    }

    /// Whether `line` falls inside a `#[cfg(test)]` module or `#[test]` fn.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| line >= lo && line <= hi)
    }

    /// Whether a finding of `rule` at `line` is silenced by a suppression.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions.iter().any(|s| s.covers(rule, line))
    }
}

/// Find line ranges of test-only items: any item annotated `#[test]`,
/// `#[cfg(test)]`, or any cfg attribute mentioning `test` (conservatively
/// including e.g. `#[cfg(any(test, feature = "x"))]`, but *not*
/// `#[cfg(not(test))]`). The range runs from the attribute to the end of
/// the item (the matching `}` or the terminating `;`).
fn test_ranges(code: &[&Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let start_line = code[i].line;
        let (is_test, after_attr) = scan_attr(code, i + 1);
        if !is_test {
            i = after_attr;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = after_attr;
        while j < code.len()
            && code[j].is_punct('#')
            && code.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            let (_, next) = scan_attr(code, j + 1);
            j = next;
        }
        // Consume the item: a brace-delimited body, or a `;`-terminated
        // item if no brace appears first.
        let mut depth = 0usize;
        let mut end_line = code.get(j).map(|t| t.line).unwrap_or(start_line);
        while j < code.len() {
            let t = code[j];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    end_line = t.line;
                    j += 1;
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                end_line = t.line;
                j += 1;
                break;
            }
            end_line = t.line;
            j += 1;
        }
        ranges.push((start_line, end_line));
        i = j;
    }
    ranges
}

/// Scan an attribute whose `[` is at `open`. Returns (mentions-test, index
/// just past the closing `]`). "Mentions test" means an ident token `test`
/// appears and no ident `not` does.
fn scan_attr(code: &[&Token], open: usize) -> (bool, usize) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    let mut k = open;
    while k < code.len() {
        let t = code[k];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return (has_test && !has_not, k + 1);
            }
        } else if t.kind == TokenKind::Ident {
            has_test |= t.text == "test";
            has_not |= t.text == "not";
        }
        k += 1;
    }
    (false, code.len())
}

/// A per-file lint rule: scans one file's tokens and reports findings.
pub trait Rule {
    /// Kebab-case rule name, used in output, configuration and suppressions.
    fn name(&self) -> &'static str;
    /// One-line description of the invariant the rule encodes.
    fn description(&self) -> &'static str;
    /// Scan `code` (the file's non-comment tokens) and push findings.
    fn check(&self, file: &SourceFile, code: &[&Token], out: &mut Vec<Diagnostic>);
}

/// Everything a semantic pass sees: the parsed workspace, its call graph,
/// and the reachability map from the configured round-loop roots.
pub struct WorkspaceContext<'a> {
    /// Every parsed file with its item tree.
    pub ws: &'a Workspace,
    /// The resolved call graph.
    pub graph: &'a CallGraph,
    /// For each graph node: `Some(root node id)` it was first reached from,
    /// or `None` when unreachable from every root.
    pub origin: &'a [Option<usize>],
    /// The configuration in force.
    pub config: &'a Config,
}

impl WorkspaceContext<'_> {
    /// Every reachable function, as `(function, witness root)` keys.
    pub fn reachable(&self) -> impl Iterator<Item = (FnKey, FnKey)> + '_ {
        self.origin
            .iter()
            .enumerate()
            .filter_map(|(id, o)| o.map(|r| (self.graph.nodes[id], self.graph.nodes[r])))
    }

    /// The provenance tail appended to semantic findings, so a reader knows
    /// *why* a function is in scope without consulting the graph.
    pub fn provenance(&self, key: FnKey, root: FnKey) -> String {
        let here = self.ws.qualified_name(key);
        if key == root {
            format!("in round-loop root `{here}`")
        } else {
            format!("in `{here}`, reachable from `{}`", self.ws.qualified_name(root))
        }
    }
}

/// A semantic rule: runs once over the whole workspace with call-graph
/// context, instead of file by file.
pub trait WorkspaceRule {
    /// Kebab-case rule name, used in output, configuration and suppressions.
    fn name(&self) -> &'static str;
    /// One-line description of the invariant the rule encodes.
    fn description(&self) -> &'static str;
    /// Inspect the workspace and push findings.
    fn check(&self, ctx: &WorkspaceContext<'_>, out: &mut Vec<Diagnostic>);
}

/// Where reachability starts: the round-loop entry points. Everything the
/// call graph can reach from here inherits the no-panic and determinism
/// contracts — there is no per-file include list to maintain.
#[derive(Debug, Clone, Default)]
pub struct RootSpec {
    /// Methods of named impl types: `("Simulation", None)` = every method,
    /// `("Simulation", Some("run_round"))` = that one.
    pub type_methods: Vec<(String, Option<String>)>,
    /// Every function in an `impl <trait> for …` block (or trait default
    /// method) for these trait names. Conservative dispatch means these are
    /// reachable from any `dyn` call site; naming them as roots also covers
    /// impls that are only constructed by user code.
    pub trait_impls: Vec<String>,
    /// Free functions in files whose path contains one of these substrings
    /// (the `fl::stages` pipeline functions).
    pub free_fn_paths: Vec<String>,
}

impl RootSpec {
    /// Whether `f` (an item of the file at `path`) is a root.
    pub fn is_root(&self, f: &crate::parser::FnItem, path: &str) -> bool {
        if let Some(ty) = f.self_type.as_deref() {
            if self
                .type_methods
                .iter()
                .any(|(t, m)| t == ty && m.as_deref().is_none_or(|m| m == f.name))
            {
                return true;
            }
        }
        if let Some(tr) = f.trait_name.as_deref() {
            if self.trait_impls.iter().any(|t| t == tr) {
                return true;
            }
        }
        f.self_type.is_none() && self.free_fn_paths.iter().any(|p| path.contains(p.as_str()))
    }
}

/// Where one rule applies, expressed as substring matches on the
/// workspace-relative path (forward slashes). Empty `include` = everywhere.
#[derive(Debug, Clone, Default)]
pub struct PathRules {
    /// If non-empty, the rule only runs on paths containing one of these.
    pub include: Vec<String>,
    /// Paths containing any of these are skipped.
    pub exclude: Vec<String>,
    /// Skip findings inside `#[cfg(test)]` / `#[test]` regions.
    pub skip_test_code: bool,
}

impl PathRules {
    /// Whether the rule runs on `path` at all.
    pub fn applies_to(&self, path: &str) -> bool {
        if self.exclude.iter().any(|p| path.contains(p.as_str())) {
            return false;
        }
        self.include.is_empty() || self.include.iter().any(|p| path.contains(p.as_str()))
    }
}

/// The engine's configuration: global path excludes, per-rule scoping, and
/// the reachability roots for the semantic passes.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Paths containing any of these are never linted (test suites, bench
    /// harnesses, examples, build output).
    pub global_exclude: Vec<String>,
    /// Path *prefixes* of crates excluded from the call graph: code that
    /// sits above the simulation in the dependency graph (the bench
    /// harness, the analyzer itself, the top-level binary). Nothing the
    /// round loop links against can call into these, so conservative
    /// name-based dispatch must not manufacture edges to them. Their
    /// `Strategy`-like impls (bench-local fault injectors) likewise run
    /// only under the harness, never inside the shipped loop.
    pub graph_exclude: Vec<String>,
    /// Per-rule path scoping, keyed by rule name. A rule with no entry runs
    /// everywhere (minus global excludes), test code included. For semantic
    /// rules the entry holds *exemptions* (sanctioned sites), not scope —
    /// scope is call-graph reachability.
    pub per_rule: Vec<(&'static str, PathRules)>,
    /// Round-loop reachability roots for the semantic passes.
    pub roots: RootSpec,
}

impl Config {
    /// Whether `path` is linted at all.
    pub fn lints_path(&self, path: &str) -> bool {
        !self.global_exclude.iter().any(|p| path.contains(p.as_str()))
    }

    /// Whether `path` participates in the call graph (and therefore in the
    /// semantic rules' scope).
    pub fn graphs_path(&self, path: &str) -> bool {
        !self.graph_exclude.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// The scoping for `rule`, if configured.
    pub fn rules_for(&self, rule: &str) -> Option<&PathRules> {
        self.per_rule.iter().find(|(name, _)| *name == rule).map(|(_, p)| p)
    }

    /// The workspace policy: which invariant holds where.
    ///
    /// * `no-panic-in-round-loop` and the determinism family
    ///   (`hash-iteration-order`, `wallclock-in-round-loop`,
    ///   `spawn-outside-executor`, `env-read-outside-override`) are
    ///   *semantic*: they apply to every function the call graph marks
    ///   reachable from the [`RootSpec`] roots — `Simulation`,
    ///   `ShardedSimulation`, `CentralizedTrainer`, the `fl::stages`
    ///   pipeline functions, and every `Strategy`/`FaultModel`/
    ///   `Interceptor` impl. Their `PathRules` entries list only the
    ///   sanctioned exemption sites (`fedcav-trace` may read the clock;
    ///   `fl::executor` may spawn and read `FEDCAV_EXECUTOR`;
    ///   `tensor::backend` may read `FEDCAV_BACKEND` and its deprecated
    ///   `FEDCAV_KERNELS` alias).
    /// * `raw-exp-ln` — everywhere except `fedcav-tensor::numerics`, the one
    ///   sanctioned home of clipped/max-subtracted exp/ln (Eq. 7/9, §4.2.3).
    /// * `unchecked-float-cmp` — everywhere, tests included: `total_cmp` is
    ///   strictly better and NaN-safe.
    /// * `no-debug-output` — library crates and the machine-readable bench
    ///   surfaces (`kernelbench`, the `kernel_bench` binary): those must go
    ///   through locked/explicit writers. Only the TSV printer
    ///   (`output.rs`), the interactive `tune_fig4` and `robustness_matrix`
    ///   harness binaries (their artifacts are written with `fs::write`;
    ///   stderr is progress narration), and crate `main.rs` entry points
    ///   are licensed to print.
    pub fn fedcav_default() -> Config {
        Config {
            global_exclude: vec![
                "/target/".to_string(),
                "tests/".to_string(),
                "benches/".to_string(),
                "examples/".to_string(),
            ],
            graph_exclude: vec![
                "crates/analyze/".to_string(),
                "crates/bench/".to_string(),
                "src/".to_string(),
            ],
            per_rule: vec![
                (
                    "no-panic-in-round-loop",
                    PathRules { include: Vec::new(), exclude: Vec::new(), skip_test_code: true },
                ),
                (
                    "hash-iteration-order",
                    PathRules { include: Vec::new(), exclude: Vec::new(), skip_test_code: true },
                ),
                (
                    "wallclock-in-round-loop",
                    PathRules {
                        include: Vec::new(),
                        exclude: vec!["crates/trace/".to_string()],
                        skip_test_code: true,
                    },
                ),
                (
                    "spawn-outside-executor",
                    PathRules {
                        include: Vec::new(),
                        exclude: vec!["crates/fl/src/executor.rs".to_string()],
                        skip_test_code: true,
                    },
                ),
                (
                    "env-read-outside-override",
                    PathRules {
                        include: Vec::new(),
                        exclude: vec![
                            "crates/fl/src/executor.rs".to_string(),
                            "crates/tensor/src/backend.rs".to_string(),
                        ],
                        skip_test_code: true,
                    },
                ),
                (
                    "raw-exp-ln",
                    PathRules {
                        include: Vec::new(),
                        exclude: vec!["crates/tensor/src/numerics.rs".to_string()],
                        skip_test_code: true,
                    },
                ),
                (
                    "unchecked-float-cmp",
                    PathRules { include: Vec::new(), exclude: Vec::new(), skip_test_code: false },
                ),
                (
                    "no-debug-output",
                    PathRules {
                        include: Vec::new(),
                        exclude: vec![
                            "crates/bench/src/output.rs".to_string(),
                            "crates/bench/src/bin/tune_fig4.rs".to_string(),
                            "crates/bench/src/bin/robustness_matrix.rs".to_string(),
                            "src/main.rs".to_string(),
                        ],
                        skip_test_code: true,
                    },
                ),
            ],
            roots: RootSpec {
                type_methods: vec![
                    ("Simulation".to_string(), None),
                    ("ShardedSimulation".to_string(), None),
                    ("CentralizedTrainer".to_string(), None),
                ],
                trait_impls: vec![
                    "Strategy".to_string(),
                    "FaultModel".to_string(),
                    "Interceptor".to_string(),
                ],
                free_fn_paths: vec!["crates/fl/src/stages/".to_string()],
            },
        }
    }
}

/// The per-file rule set, in reporting order.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![Box::new(RawExpLn), Box::new(UncheckedFloatCmp), Box::new(NoDebugOutput)]
}

/// The semantic (workspace) rule set, in reporting order.
pub fn default_workspace_rules() -> Vec<Box<dyn WorkspaceRule>> {
    vec![
        Box::new(NoPanicInRoundLoop),
        Box::new(HashIterationOrder),
        Box::new(WallclockInRoundLoop),
        Box::new(SpawnOutsideExecutor),
        Box::new(EnvReadOutsideOverride),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_lines_are_test_code() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib2() {}\n";
        let (f, _) = SourceFile::parse("x.rs", src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(2));
        assert!(f.in_test_code(4));
        assert!(f.in_test_code(5));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn test_fn_with_stacked_attrs_is_test_code() {
        let src = "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() {\n    x();\n}\n";
        let (f, _) = SourceFile::parse("x.rs", src);
        assert!(f.in_test_code(4));
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nfn shipping_code() {\n    y();\n}\n";
        let (f, _) = SourceFile::parse("x.rs", src);
        assert!(!f.in_test_code(3));
    }

    #[test]
    fn cfg_test_use_statement_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}\n";
        let (f, _) = SourceFile::parse("x.rs", src);
        assert!(f.in_test_code(2));
        assert!(!f.in_test_code(3));
    }

    #[test]
    fn path_rules_matching() {
        let p = PathRules {
            include: vec!["crates/fl/src/server.rs".to_string()],
            exclude: vec!["crates/fl/src/server_old.rs".to_string()],
            skip_test_code: true,
        };
        assert!(p.applies_to("crates/fl/src/server.rs"));
        assert!(!p.applies_to("crates/fl/src/client.rs"));
        let all = PathRules::default();
        assert!(all.applies_to("anything.rs"));
    }

    #[test]
    fn default_config_scopes_are_sane() {
        let c = Config::fedcav_default();
        assert!(!c.lints_path("crates/fl/tests/integration.rs"));
        assert!(!c.lints_path("crates/bench/benches/kernels.rs"));
        assert!(c.lints_path("crates/fl/src/server.rs"));
        // The semantic rules carry no include lists: scope is reachability.
        let np = c.rules_for("no-panic-in-round-loop").expect("configured");
        assert!(np.include.is_empty(), "no hand-maintained include list");
        assert!(np.applies_to("crates/fl/src/server.rs"));
        assert!(np.applies_to("crates/nn/src/dense.rs"));
        // Determinism exemptions: only the sanctioned sites are excluded.
        let wc = c.rules_for("wallclock-in-round-loop").expect("configured");
        assert!(!wc.applies_to("crates/trace/src/tracer.rs"));
        assert!(wc.applies_to("crates/fl/src/centralized.rs"));
        let sp = c.rules_for("spawn-outside-executor").expect("configured");
        assert!(!sp.applies_to("crates/fl/src/executor.rs"));
        assert!(sp.applies_to("crates/fl/src/server.rs"));
        let ev = c.rules_for("env-read-outside-override").expect("configured");
        assert!(!ev.applies_to("crates/fl/src/executor.rs"));
        assert!(!ev.applies_to("crates/tensor/src/backend.rs"));
        assert!(ev.applies_to("crates/tensor/src/matmul.rs"), "matmul no longer reads env");
        assert!(ev.applies_to("crates/fl/src/server.rs"));
        let exp = c.rules_for("raw-exp-ln").expect("configured");
        assert!(!exp.applies_to("crates/tensor/src/numerics.rs"));
        assert!(exp.applies_to("crates/fl/src/latency.rs"));
        let dbg_rule = c.rules_for("no-debug-output").expect("configured");
        assert!(!dbg_rule.applies_to("crates/bench/src/output.rs"));
        assert!(!dbg_rule.applies_to("crates/bench/src/bin/tune_fig4.rs"));
        assert!(!dbg_rule.applies_to("crates/bench/src/bin/robustness_matrix.rs"));
        assert!(!dbg_rule.applies_to("crates/analyze/src/main.rs"));
        assert!(dbg_rule.applies_to("crates/nn/src/dense.rs"));
        // The kernel-bench surfaces are deliberately IN scope: they write
        // the machine-readable artifact and must use explicit writers.
        assert!(dbg_rule.applies_to("crates/bench/src/kernelbench.rs"));
        assert!(dbg_rule.applies_to("crates/bench/src/bin/kernel_bench.rs"));
    }

    #[test]
    fn root_spec_matches_types_traits_and_stage_paths() {
        let roots = Config::fedcav_default().roots;
        let mk = |name: &str, self_type: Option<&str>, trait_name: Option<&str>| {
            crate::parser::FnItem {
                name: name.to_string(),
                modules: Vec::new(),
                self_type: self_type.map(String::from),
                trait_name: trait_name.map(String::from),
                has_receiver: true,
                line: 1,
                end_line: 1,
                body: None,
            }
        };
        assert!(roots.is_root(&mk("run_round", Some("Simulation"), None), "crates/fl/src/server.rs"));
        assert!(roots.is_root(&mk("new", Some("ShardedSimulation"), None), "crates/fl/src/sharded.rs"));
        assert!(roots
            .is_root(&mk("aggregate", Some("FedAvg"), Some("Strategy")), "crates/fl/src/fedavg.rs"));
        let mut free = mk("run", None, None);
        free.has_receiver = false;
        assert!(roots.is_root(&free, "crates/fl/src/stages/sampling.rs"));
        assert!(!roots.is_root(&free, "crates/fl/src/aggregate.rs"));
        assert!(!roots.is_root(&mk("helper", Some("Dataset"), None), "crates/data/src/lib.rs"));
    }
}
