//! `unchecked-float-cmp`: NaN must not decide orderings by accident.
//!
//! `partial_cmp` on floats returns `None` for NaN. Every downstream
//! `unwrap()` is a panic waiting for the first corrupted update, and every
//! `unwrap_or(Equal)` silently makes NaN compare equal to everything —
//! which in a `sort_by` leaves the vector in an arbitrary,
//! platform-dependent order (medians, percentiles and argmaxes computed
//! from it are then garbage). `f32::total_cmp`/`f64::total_cmp` is the
//! fix: a total order, NaN sorted deterministically to the ends.

use super::{Rule, SourceFile};
use crate::diagnostics::{Diagnostic, Severity};
use crate::lexer::Token;

/// See the module docs.
pub struct UncheckedFloatCmp;

const SINKS: [&str; 4] = ["unwrap", "expect", "unwrap_or", "unwrap_or_else"];

impl Rule for UncheckedFloatCmp {
    fn name(&self) -> &'static str {
        "unchecked-float-cmp"
    }

    fn description(&self) -> &'static str {
        "no partial_cmp().unwrap()/unwrap_or(): NaN makes the former panic and the \
         latter sort nondeterministically; use total_cmp"
    }

    fn check(&self, file: &SourceFile, code: &[&Token], out: &mut Vec<Diagnostic>) {
        for (i, t) in code.iter().enumerate() {
            if !(t.is_punct('.') && code.get(i + 1).is_some_and(|n| n.is_ident("partial_cmp"))) {
                continue;
            }
            let at = code[i + 1];
            if !code.get(i + 2).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            // Walk past the balanced argument list.
            let mut depth = 0usize;
            let mut k = i + 2;
            while k < code.len() {
                if code[k].is_punct('(') {
                    depth += 1;
                } else if code[k].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            let sink = code
                .get(k + 1)
                .filter(|n| n.is_punct('.'))
                .and_then(|_| code.get(k + 2))
                .filter(|n| SINKS.contains(&n.text.as_str()));
            if let Some(sink) = sink {
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line: at.line,
                    col: at.col,
                    rule: self.name(),
                    severity: Severity::Error,
                    message: format!(
                        "`partial_cmp().{}()` mishandles NaN (panic or nondeterministic \
                         order); use `total_cmp` instead",
                        sink.text
                    ),
                });
            }
        }
    }
}
