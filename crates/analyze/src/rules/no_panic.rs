//! `no-panic-in-round-loop`: the fault-tolerant round loop must degrade,
//! never die.
//!
//! PR 1 made `Simulation::run_round` survive crashing clients, corrupted
//! uploads and missed deadlines — a client failure costs the round one
//! contribution, never the whole simulation. A stray `unwrap()` on that
//! path undoes the entire design: one malformed update panics the server
//! instead of quarantining the client.
//!
//! Scope is **semantic, not configured**: the rule flags panicking
//! constructs (`unwrap`/`expect`, `panic!`-family macros, `[…]` index and
//! range-index expressions) in any function the workspace call graph
//! ([`crate::callgraph`]) marks reachable from the round-loop roots —
//! `Simulation`, `ShardedSimulation`, `CentralizedTrainer`, the
//! `fl::stages` free functions, and every `Strategy`/`FaultModel`/
//! `Interceptor` impl. There is no hand-maintained file list to extend
//! when a new crate grows onto the hot path; writing code the loop can
//! call *is* opting into the contract.

use super::{WorkspaceContext, WorkspaceRule};
use crate::diagnostics::{Diagnostic, Severity};
use crate::lexer::{Token, TokenKind};

/// See the module docs.
pub struct NoPanicInRoundLoop;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords after which a `[` opens an array literal or slice type, not an
/// index expression (`for x in [..]`, `return [..]`, `&mut [f32]`, …).
const KEYWORDS: [&str; 22] = [
    "as", "break", "const", "dyn", "else", "enum", "fn", "for", "if", "impl", "in", "let", "loop",
    "match", "move", "mut", "ref", "return", "static", "unsafe", "where", "while",
];

/// Scan a token slice for panicking constructs, reporting each as
/// `(token, message)`. Shared between the workspace rule and its fixtures.
pub fn scan_panic_sites(code: &[&Token], mut report: impl FnMut(&Token, String)) {
    for (i, t) in code.iter().enumerate() {
        // `.unwrap(` / `.expect(`
        if t.is_punct('.')
            && code.get(i + 1).is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
            && code.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            let name = &code[i + 1];
            report(
                name,
                format!(
                    "`.{}()` can panic the round loop; return a graceful error \
                     (quarantine/degrade via FaultPolicy) instead",
                    name.text
                ),
            );
        }
        // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
        if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && code.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            report(
                t,
                format!(
                    "`{}!` aborts the round; a failed client must degrade the round, \
                     not kill the simulation",
                    t.text
                ),
            );
        }
        // `expr[i]`: an index expression is a `[` directly after an
        // identifier, `)` or `]`. (Attributes are `#[`, macros `![`,
        // array types `: [T; N]` — none of those match.)
        if t.is_punct('[')
            && i > 0
            && ((code[i - 1].kind == TokenKind::Ident
                && !KEYWORDS.contains(&code[i - 1].text.as_str()))
                || code[i - 1].is_punct(')')
                || code[i - 1].is_punct(']'))
        {
            report(
                t,
                "`[…]` indexing panics out of bounds; use `.get()` / iterators so a \
                 malformed update degrades gracefully"
                    .to_string(),
            );
        }
    }
}

impl WorkspaceRule for NoPanicInRoundLoop {
    fn name(&self) -> &'static str {
        "no-panic-in-round-loop"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panicking macro/[i] indexing in any function reachable from \
         the round-loop roots (call-graph derived): a client failure must cost one \
         contribution, never the round"
    }

    fn check(&self, ctx: &WorkspaceContext<'_>, out: &mut Vec<Diagnostic>) {
        for (key, root) in ctx.reachable() {
            let wf = &ctx.ws.files[key.0];
            let item = &wf.fns[key.1];
            let Some((lo, hi)) = item.body else { continue };
            let code = wf.source.code();
            let via = ctx.provenance(key, root);
            scan_panic_sites(&code[lo..hi], |tok, msg| {
                out.push(Diagnostic {
                    file: wf.source.path.clone(),
                    line: tok.line,
                    col: tok.col,
                    rule: self.name(),
                    severity: Severity::Error,
                    message: format!("{msg} [{via}]"),
                });
            });
        }
    }
}
