//! `no-panic-in-round-loop`: the fault-tolerant round loop must degrade,
//! never die.
//!
//! PR 1 made `Simulation::run_round` survive crashing clients, corrupted
//! uploads and missed deadlines — a client failure costs the round one
//! contribution, never the whole simulation. A stray `unwrap()` on that
//! path undoes the entire design: one malformed update panics the server
//! instead of quarantining the client. This rule bans `unwrap`/`expect`
//! calls, panicking macros, and `[i]` slice indexing (an implicit panic
//! point) on the configured aggregation/validation paths.

use super::{Rule, SourceFile};
use crate::diagnostics::{Diagnostic, Severity};
use crate::lexer::{Token, TokenKind};

/// See the module docs.
pub struct NoPanicInRoundLoop;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords after which a `[` opens an array literal or slice type, not an
/// index expression (`for x in [..]`, `return [..]`, `&mut [f32]`, …).
const KEYWORDS: [&str; 22] = [
    "as", "break", "const", "dyn", "else", "enum", "fn", "for", "if", "impl", "in", "let", "loop",
    "match", "move", "mut", "ref", "return", "static", "unsafe", "where", "while",
];

impl Rule for NoPanicInRoundLoop {
    fn name(&self) -> &'static str {
        "no-panic-in-round-loop"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panicking macro/[i] indexing on the server aggregation path: \
         a client failure must cost one contribution, never the round"
    }

    fn check(&self, file: &SourceFile, code: &[&Token], out: &mut Vec<Diagnostic>) {
        for (i, t) in code.iter().enumerate() {
            // `.unwrap(` / `.expect(`
            if t.is_punct('.')
                && code.get(i + 1).is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                && code.get(i + 2).is_some_and(|n| n.is_punct('('))
            {
                let name = &code[i + 1];
                out.push(self.diag(
                    file,
                    name,
                    format!(
                        "`.{}()` can panic the round loop; return a graceful error \
                         (quarantine/degrade via FaultPolicy) instead",
                        name.text
                    ),
                ));
            }
            // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
            if t.kind == TokenKind::Ident
                && PANIC_MACROS.contains(&t.text.as_str())
                && code.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push(self.diag(
                    file,
                    t,
                    format!(
                        "`{}!` aborts the round; a failed client must degrade the round, \
                         not kill the simulation",
                        t.text
                    ),
                ));
            }
            // `expr[i]`: an index expression is a `[` directly after an
            // identifier, `)` or `]`. (Attributes are `#[`, macros `![`,
            // array types `: [T; N]` — none of those match.)
            if t.is_punct('[')
                && i > 0
                && ((code[i - 1].kind == TokenKind::Ident
                    && !KEYWORDS.contains(&code[i - 1].text.as_str()))
                    || code[i - 1].is_punct(')')
                    || code[i - 1].is_punct(']'))
            {
                out.push(
                    self.diag(
                        file,
                        t,
                        "`[…]` indexing panics out of bounds; use `.get()` / iterators so a \
                     malformed update degrades gracefully"
                            .to_string(),
                    ),
                );
            }
        }
    }
}

impl NoPanicInRoundLoop {
    fn diag(&self, file: &SourceFile, at: &Token, message: String) -> Diagnostic {
        Diagnostic {
            file: file.path.clone(),
            line: at.line,
            col: at.col,
            rule: self.name(),
            severity: Severity::Error,
            message,
        }
    }
}
