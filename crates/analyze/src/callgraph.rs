//! The workspace call graph: a symbol table over every file's item tree,
//! call-site extraction from function bodies, and reachability from the
//! round-loop roots.
//!
//! Resolution is *conservative by construction* — the graph may contain
//! edges the compiler would never take, but must never miss one the
//! runtime can take, because the panic-reachability and determinism rules
//! treat "unreachable" as "exempt". Concretely:
//!
//! * a method call `x.foo(…)` resolves to **every** workspace method named
//!   `foo` that takes a receiver (trait dispatch cannot be resolved
//!   lexically, so all impls are assumed callable);
//! * a qualified call `a::b::foo(…)` resolves to the candidates named
//!   `foo` whose module/impl/file context matches the qualifier segments —
//!   and falls back to *all* candidates named `foo` when the qualifier
//!   matches nothing we know (an aliased import, a re-export);
//! * a bare call `foo(…)` resolves to every workspace function named
//!   `foo` without a receiver;
//! * `Self::foo(…)` resolves within the caller's `impl` type.
//!
//! Functions inside `#[cfg(test)]` regions are excluded from the graph
//! entirely (not nodes, not candidates): test harness code is not shipped
//! and must not drag library functions into the round-loop contract.

use crate::lexer::{Token, TokenKind};
use crate::parser::FnItem;
use crate::rules::SourceFile;
use std::collections::HashMap;

/// One parsed file plus its item tree — the unit the workspace passes
/// operate over.
pub struct WorkspaceFile {
    /// The lexed, suppression- and test-range-annotated source.
    pub source: SourceFile,
    /// Every `fn` item in the file.
    pub fns: Vec<FnItem>,
    /// Whether this file participates in the call graph (globally excluded
    /// paths — tests, benches, examples — are parsed but not graphed).
    pub graphed: bool,
}

/// A workspace of parsed files. Indexes into `files` are stable and used
/// as the `file` half of a [`FnKey`].
pub struct Workspace {
    /// All parsed files, in walk (sorted-path) order.
    pub files: Vec<WorkspaceFile>,
}

/// Identifies one function: (file index, index into that file's `fns`).
pub type FnKey = (usize, usize);

impl Workspace {
    /// The function item behind a key.
    pub fn item(&self, key: FnKey) -> &FnItem {
        &self.files[key.0].fns[key.1]
    }

    /// Human name of a function: `Type::name` for methods, `name` for free
    /// functions.
    pub fn qualified_name(&self, key: FnKey) -> String {
        let f = self.item(key);
        match &f.self_type {
            Some(ty) => format!("{ty}::{}", f.name),
            None => f.name.clone(),
        }
    }
}

/// One call site extracted from a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Path segments as written: `["stages", "sampling", "run"]` for
    /// `stages::sampling::run(…)`, `["run"]` for a bare or method call.
    pub segments: Vec<String>,
    /// Whether this was a `.name(…)` method call.
    pub is_method: bool,
}

/// The resolved call graph plus the root set and what is reachable from it.
pub struct CallGraph {
    /// Global node order: every non-test function of every graphed file.
    pub nodes: Vec<FnKey>,
    /// `edges[i]` = indices (into `nodes`) this node may call.
    pub edges: Vec<Vec<usize>>,
    node_of: HashMap<FnKey, usize>,
    by_name: HashMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Build the graph over every non-test function of the workspace's
    /// graphed files.
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut nodes = Vec::new();
        let mut node_of = HashMap::new();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (fi, wf) in ws.files.iter().enumerate() {
            if !wf.graphed {
                continue;
            }
            for (gi, f) in wf.fns.iter().enumerate() {
                if wf.source.in_test_code(f.line) {
                    continue;
                }
                let id = nodes.len();
                nodes.push((fi, gi));
                node_of.insert((fi, gi), id);
                by_name.entry(f.name.clone()).or_default().push(id);
            }
        }
        let mut graph = CallGraph { nodes, edges: Vec::new(), node_of, by_name };
        let mut edges = Vec::with_capacity(graph.nodes.len());
        for &key in &graph.nodes {
            let wf = &ws.files[key.0];
            let item = &wf.fns[key.1];
            let mut out = Vec::new();
            if let Some((lo, hi)) = item.body {
                let code = wf.source.code();
                for call in extract_calls(&code[lo..hi]) {
                    out.extend(graph.resolve(ws, key, &call));
                }
            }
            out.sort_unstable();
            out.dedup();
            edges.push(out);
        }
        graph.edges = edges;
        graph
    }

    /// The node id of a function, if it is in the graph.
    pub fn node(&self, key: FnKey) -> Option<usize> {
        self.node_of.get(&key).copied()
    }

    /// Resolve one call site from `caller` to candidate node ids. See the
    /// module docs for the conservatism contract.
    pub fn resolve(&self, ws: &Workspace, caller: FnKey, call: &CallSite) -> Vec<usize> {
        let Some(name) = call.segments.last() else { return Vec::new() };
        let Some(cands) = self.by_name.get(name) else { return Vec::new() };
        if call.is_method {
            // Trait dispatch cannot be resolved lexically: any same-named
            // method with a receiver may be the target.
            return cands
                .iter()
                .copied()
                .filter(|&id| {
                    let f = ws.item(self.nodes[id]);
                    f.has_receiver && f.self_type.is_some()
                })
                .collect();
        }
        let quals = &call.segments[..call.segments.len() - 1];
        if quals.is_empty() {
            // Bare call: free functions and associated functions brought in
            // by `use` look identical; keep both kinds of receiver-less fn.
            return cands
                .iter()
                .copied()
                .filter(|&id| !ws.item(self.nodes[id]).has_receiver)
                .collect();
        }
        let caller_ty = ws.item(caller).self_type.clone();
        let matched: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&id| {
                let key = self.nodes[id];
                quals.iter().all(|q| qualifier_matches(ws, key, q, caller_ty.as_deref()))
            })
            .collect();
        if matched.is_empty() {
            // Unknown qualifier (re-export, alias, std shadow): keep every
            // candidate rather than silently dropping an edge.
            cands.clone()
        } else {
            matched
        }
    }

    /// BFS from `roots` (node ids). Returns, for each node, `Some(root)` —
    /// the id of the root it was first reached from — or `None` when
    /// unreachable. Roots map to themselves.
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut origin: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if r < self.nodes.len() && origin[r].is_none() {
                origin[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            let root = origin[n];
            for &m in &self.edges[n] {
                if origin[m].is_none() {
                    origin[m] = root;
                    queue.push_back(m);
                }
            }
        }
        origin
    }
}

/// Segments that name scopes, not modules we can match (`crate::foo::bar`
/// should match on `foo`/`bar` only).
const SCOPE_SEGMENTS: [&str; 5] = ["crate", "self", "super", "std", "core"];

/// Whether qualifier segment `q` is consistent with function `key`: it
/// names the fn's impl type, one of its inline modules, a path component
/// of its file, or — for `Self` — the caller's own impl type.
fn qualifier_matches(ws: &Workspace, key: FnKey, q: &str, caller_ty: Option<&str>) -> bool {
    if SCOPE_SEGMENTS.contains(&q) {
        return true; // scope markers constrain nothing we can check
    }
    let f = ws.item(key);
    if q == "Self" {
        return match (caller_ty, &f.self_type) {
            (Some(c), Some(t)) => c == t,
            _ => false,
        };
    }
    if f.self_type.as_deref() == Some(q) || f.modules.iter().any(|m| m == q) {
        return true;
    }
    // File path components: `stages::sampling::run` matches
    // `crates/fl/src/stages/sampling.rs`; crate idents `fedcav_fl` match
    // the `crates/fl/` component.
    let path = &ws.files[key.0].source.path;
    let stem = q.strip_prefix("fedcav_").unwrap_or(q);
    path.split('/').any(|c| c == q || c == stem || c.strip_suffix(".rs") == Some(q))
}

/// Keywords that look like a call head when followed by `(` but are not.
const NON_CALL_KEYWORDS: [&str; 10] =
    ["if", "while", "match", "for", "loop", "return", "in", "as", "fn", "move"];

/// Extract every call site from a body token slice.
pub fn extract_calls(body: &[&Token]) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        let t = body[i];
        if t.kind != TokenKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        // A `fn` keyword right before means this ident is a definition.
        if i > 0 && body[i - 1].is_ident("fn") {
            i += 1;
            continue;
        }
        let is_method = i > 0 && body[i - 1].is_punct('.');
        // Collect the `a::b::c` path (methods have a single segment).
        let mut segments = vec![t.text.clone()];
        let mut j = i + 1;
        if !is_method {
            while j + 2 < body.len() + 1
                && body.get(j).is_some_and(|p| p.is_punct(':'))
                && body.get(j + 1).is_some_and(|p| p.is_punct(':'))
            {
                match body.get(j + 2) {
                    Some(n) if n.kind == TokenKind::Ident => {
                        segments.push(n.text.clone());
                        j += 3;
                    }
                    // Turbofish `::<…>`: skip the generic args.
                    Some(n) if n.is_punct('<') => {
                        j = skip_angles(body, j + 2);
                        break;
                    }
                    _ => break,
                }
            }
        } else if body.get(j).is_some_and(|p| p.is_punct(':'))
            && body.get(j + 1).is_some_and(|p| p.is_punct(':'))
            && body.get(j + 2).is_some_and(|p| p.is_punct('<'))
        {
            // `.collect::<Vec<_>>(…)`
            j = skip_angles(body, j + 2);
        }
        // A macro (`name!(…)`) is not a function call.
        if body.get(j).is_some_and(|p| p.is_punct('!')) {
            i = j + 1;
            continue;
        }
        if body.get(j).is_some_and(|p| p.is_punct('(')) {
            out.push(CallSite { segments, is_method });
        }
        // Resume after the head (not after the args: arguments may contain
        // further calls).
        i = j.max(i + 1);
    }
    out
}

/// Skip a balanced `<…>` starting at the `<` at `open`; `->`/`=>` arrows do
/// not close angles. Returns the index just past the matching `>`.
fn skip_angles(body: &[&Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < body.len() {
        let t = body[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>')
            && !(j > 0 && (body[j - 1].is_punct('-') || body[j - 1].is_punct('=')))
        {
            depth -= 1;
            if depth <= 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    body.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn calls(src: &str) -> Vec<CallSite> {
        let toks = lex(src);
        let code: Vec<&Token> = toks.iter().filter(|t| !t.is_comment()).collect();
        extract_calls(&code)
    }

    #[test]
    fn bare_path_and_method_calls_are_extracted() {
        let cs = calls("{ helper(); stages::sampling::run(ctx); x.validate(n); }");
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].segments, vec!["helper"]);
        assert!(!cs[0].is_method);
        assert_eq!(cs[1].segments, vec!["stages", "sampling", "run"]);
        assert_eq!(cs[2].segments, vec!["validate"]);
        assert!(cs[2].is_method);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let cs = calls("{ if x(y) { println!(\"{}\", z) } match w(v) { _ => {} } }");
        let names: Vec<&str> = cs.iter().map(|c| c.segments.last().unwrap().as_str()).collect();
        assert_eq!(names, vec!["x", "w"]);
    }

    #[test]
    fn turbofish_is_a_call() {
        let cs = calls("{ let v = it.collect::<Vec<Vec<f32>>>(); parse::<u32>(s); }");
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].segments, vec!["collect"]);
        assert!(cs[0].is_method);
        assert_eq!(cs[1].segments, vec!["parse"]);
    }
}
