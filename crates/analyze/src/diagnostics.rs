//! Findings: what a rule reports, and how it is rendered.

use std::fmt;

/// How bad a finding is. Every FedCav invariant rule reports [`Severity::Error`]
/// — they encode correctness properties of the aggregation path, not style —
/// so `--deny` treats any finding as fatal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; never fails a `--deny` run on its own. Reserved for future
    /// rules — the current set is all errors.
    Warning,
    /// An invariant violation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding, anchored to a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes) of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Name of the rule that fired (kebab-case).
    pub rule: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Human-oriented explanation, including the suggested fix.
    pub message: String,
}

impl Diagnostic {
    /// `path:line:col: severity[rule]: message` — the compiler-ish one-liner.
    pub fn human(&self) -> String {
        format!(
            "{}:{}:{}: {}[{}]: {}",
            self.file, self.line, self.col, self.severity, self.rule, self.message
        )
    }

    /// This finding as one flat JSON object.
    pub fn json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"severity\":{},\"message\":{}}}",
            json_str(&self.file),
            self.line,
            self.col,
            json_str(self.rule),
            json_str(&self.severity.to_string()),
            json_str(&self.message)
        )
    }
}

/// Render findings as a JSON array (one object per line, machine-stable).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&d.json());
        if i + 1 < diags.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            file: "crates/fl/src/server.rs".to_string(),
            line: 7,
            col: 13,
            rule: "no-panic-in-round-loop",
            severity: Severity::Error,
            message: "say \"no\"\tto panics".to_string(),
        }
    }

    #[test]
    fn human_format_is_compilerish() {
        assert!(diag()
            .human()
            .starts_with("crates/fl/src/server.rs:7:13: error[no-panic-in-round-loop]:"));
    }

    #[test]
    fn json_escapes_quotes_and_tabs() {
        let j = diag().json();
        assert!(j.contains("\\\"no\\\""), "{j}");
        assert!(j.contains("\\t"), "{j}");
        assert!(j.contains("\"line\":7"), "{j}");
    }

    #[test]
    fn json_array_shape() {
        let j = render_json(&[diag(), diag()]);
        assert!(j.starts_with("[\n"));
        assert!(j.ends_with(']'));
        assert_eq!(j.matches("\"rule\"").count(), 2);
        assert_eq!(render_json(&[]), "[\n]");
    }
}
