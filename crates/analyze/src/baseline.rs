//! The findings baseline: a committed ratchet that lets `--deny` stay red
//! for *new* findings while legacy ones are paid down deliberately.
//!
//! A baseline is a JSON file of entries, each naming a rule, a file, a
//! message-substring `context` to pin the specific finding, and a
//! **mandatory reason** explaining why it is tolerated rather than fixed:
//!
//! ```json
//! {
//!   "version": 1,
//!   "entries": [
//!     { "rule": "wallclock-in-round-loop",
//!       "file": "crates/fl/src/centralized.rs",
//!       "context": "Instant::now",
//!       "reason": "phase telemetry only; feeds RoundRecord.phases, never the model" }
//!   ]
//! }
//! ```
//!
//! The ratchet discipline:
//! * a finding matched by an entry is *legacy*: reported as tolerated,
//!   never failing `--deny`;
//! * a finding matched by no entry is *new*: `--deny` fails;
//! * an entry matching no finding is *stale*: reported so the file shrinks
//!   as debt is paid — the baseline only ever ratchets down.
//!
//! Entries are matched by exact rule + file and `message.contains(context)`
//! (empty context pins the whole file for that rule). Like the rest of the
//! crate, parsing is std-only: a minimal recursive-descent JSON reader that
//! rejects what it does not understand rather than guessing.

use crate::diagnostics::{json_str, Diagnostic};

/// One tolerated legacy finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule name, matched exactly.
    pub rule: String,
    /// Workspace-relative file, matched exactly.
    pub file: String,
    /// Substring the finding's message must contain; empty matches any
    /// message of `rule` in `file`.
    pub context: String,
    /// Why this finding is tolerated (mandatory, non-empty).
    pub reason: String,
}

/// A parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Tolerated findings, in file order.
    pub entries: Vec<BaselineEntry>,
}

/// The result of filtering findings through a baseline.
#[derive(Debug)]
pub struct BaselineOutcome {
    /// Findings no entry matched: these fail `--deny`.
    pub new: Vec<Diagnostic>,
    /// `(entry index, finding)` pairs for tolerated legacy findings.
    pub legacy: Vec<(usize, Diagnostic)>,
    /// Indices of entries that matched nothing — stale debt to delete.
    pub stale: Vec<usize>,
}

impl Baseline {
    /// An empty baseline: every finding is new.
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Parse a baseline file. Errors name what was malformed — a baseline
    /// that cannot be read must fail the run, not silently admit findings.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let (value, rest) = Json::parse(src.trim())?;
        if !rest.trim().is_empty() {
            return Err("trailing content after baseline JSON".to_string());
        }
        let Json::Obj(fields) = value else {
            return Err("baseline root must be a JSON object".to_string());
        };
        let version = fields.iter().find(|(k, _)| k == "version").map(|(_, v)| v);
        match version {
            Some(Json::Num(n)) if *n == 1.0 => {}
            Some(_) => return Err("baseline `version` must be the number 1".to_string()),
            None => return Err("baseline missing `version`".to_string()),
        }
        let Some((_, Json::Arr(items))) = fields.iter().find(|(k, _)| k == "entries") else {
            return Err("baseline missing `entries` array".to_string());
        };
        let mut entries = Vec::new();
        for (i, item) in items.iter().enumerate() {
            let Json::Obj(e) = item else {
                return Err(format!("baseline entry {i} is not an object"));
            };
            let get = |k: &str| -> Option<String> {
                e.iter().find(|(key, _)| key == k).and_then(|(_, v)| match v {
                    Json::Str(s) => Some(s.clone()),
                    _ => None,
                })
            };
            let rule = get("rule").ok_or_else(|| format!("entry {i}: missing `rule`"))?;
            let file = get("file").ok_or_else(|| format!("entry {i}: missing `file`"))?;
            let context = get("context").unwrap_or_default();
            let reason = get("reason").ok_or_else(|| format!("entry {i}: missing `reason`"))?;
            if reason.trim().is_empty() {
                return Err(format!(
                    "entry {i} ({rule} in {file}): `reason` is mandatory — say why this \
                     finding is tolerated instead of fixed"
                ));
            }
            entries.push(BaselineEntry { rule, file, context, reason });
        }
        Ok(Baseline { entries })
    }

    /// Split findings into new vs. baseline-tolerated, and report stale
    /// entries. An entry may match several findings (e.g. one reason
    /// covering every line of a file).
    pub fn apply(&self, diags: Vec<Diagnostic>) -> BaselineOutcome {
        let mut used = vec![false; self.entries.len()];
        let mut new = Vec::new();
        let mut legacy = Vec::new();
        for d in diags {
            let hit = self.entries.iter().position(|e| {
                e.rule == d.rule
                    && e.file == d.file
                    && (e.context.is_empty() || d.message.contains(&e.context))
            });
            match hit {
                Some(i) => {
                    used[i] = true;
                    legacy.push((i, d));
                }
                None => new.push(d),
            }
        }
        let stale = used.iter().enumerate().filter(|(_, u)| !**u).map(|(i, _)| i).collect();
        BaselineOutcome { new, legacy, stale }
    }

    /// Render findings as a fresh baseline file — one entry per distinct
    /// `(rule, file, context)`, where context is the finding's leading
    /// backtick-quoted construct (so the entry survives line churn but not
    /// findings of a different shape). Reasons are stamped `TODO` — the
    /// author must replace each with a real justification before
    /// committing, which is the point: baselining is a decision, not a
    /// default.
    pub fn render(diags: &[Diagnostic]) -> String {
        let mut keys: Vec<(String, &'static str, String)> = diags
            .iter()
            .map(|d| {
                let context = d
                    .message
                    .split('`')
                    .nth(1)
                    .map(|c| format!("`{c}`"))
                    .unwrap_or_default();
                (d.file.clone(), d.rule, context)
            })
            .collect();
        keys.sort();
        keys.dedup();
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
        for (i, (file, rule, context)) in keys.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"rule\": {}, \"file\": {}, \"context\": {}, \"reason\": {} }}{}\n",
                json_str(rule),
                json_str(file),
                json_str(context),
                json_str("TODO: justify this legacy finding or fix it"),
                if i + 1 < keys.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// A parsed JSON value — only what a baseline file needs.
#[derive(Debug)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(f64),
    #[allow(dead_code)]
    Bool(bool),
    Null,
}

impl Json {
    /// Parse one value off the front of `s`; returns the value and the rest.
    fn parse(s: &str) -> Result<(Json, &str), String> {
        let s = s.trim_start();
        let mut chars = s.chars();
        match chars.next() {
            Some('{') => {
                let mut rest = s[1..].trim_start();
                let mut fields = Vec::new();
                if let Some(r) = rest.strip_prefix('}') {
                    return Ok((Json::Obj(fields), r));
                }
                loop {
                    let (key, r) = Json::parse(rest)?;
                    let Json::Str(key) = key else {
                        return Err("object key must be a string".to_string());
                    };
                    let r = r.trim_start();
                    let r = r.strip_prefix(':').ok_or("expected `:` after key")?;
                    let (val, r) = Json::parse(r)?;
                    fields.push((key, val));
                    let r = r.trim_start();
                    if let Some(r) = r.strip_prefix(',') {
                        rest = r.trim_start();
                    } else if let Some(r) = r.strip_prefix('}') {
                        return Ok((Json::Obj(fields), r));
                    } else {
                        return Err("expected `,` or `}` in object".to_string());
                    }
                }
            }
            Some('[') => {
                let mut rest = s[1..].trim_start();
                let mut items = Vec::new();
                if let Some(r) = rest.strip_prefix(']') {
                    return Ok((Json::Arr(items), r));
                }
                loop {
                    let (val, r) = Json::parse(rest)?;
                    items.push(val);
                    let r = r.trim_start();
                    if let Some(r) = r.strip_prefix(',') {
                        rest = r.trim_start();
                    } else if let Some(r) = r.strip_prefix(']') {
                        return Ok((Json::Arr(items), r));
                    } else {
                        return Err("expected `,` or `]` in array".to_string());
                    }
                }
            }
            Some('"') => {
                let mut out = String::new();
                let mut it = s[1..].char_indices();
                while let Some((i, c)) = it.next() {
                    match c {
                        '"' => return Ok((Json::Str(out), &s[1 + i + 1..])),
                        '\\' => match it.next() {
                            Some((_, '"')) => out.push('"'),
                            Some((_, '\\')) => out.push('\\'),
                            Some((_, '/')) => out.push('/'),
                            Some((_, 'n')) => out.push('\n'),
                            Some((_, 'r')) => out.push('\r'),
                            Some((_, 't')) => out.push('\t'),
                            Some((_, 'u')) => {
                                let mut code = 0u32;
                                for _ in 0..4 {
                                    let (_, h) =
                                        it.next().ok_or("truncated \\u escape")?;
                                    code = code * 16
                                        + h.to_digit(16).ok_or("bad \\u escape")?;
                                }
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            _ => return Err("bad string escape".to_string()),
                        },
                        c => out.push(c),
                    }
                }
                Err("unterminated string".to_string())
            }
            Some(c) if c == '-' || c.is_ascii_digit() => {
                let end = s
                    .find(|c: char| {
                        !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                    })
                    .unwrap_or(s.len());
                let n: f64 =
                    s[..end].parse().map_err(|_| format!("bad number `{}`", &s[..end]))?;
                Ok((Json::Num(n), &s[end..]))
            }
            _ if s.starts_with("true") => Ok((Json::Bool(true), &s[4..])),
            _ if s.starts_with("false") => Ok((Json::Bool(false), &s[5..])),
            _ if s.starts_with("null") => Ok((Json::Null, &s[4..])),
            _ => Err(format!("unexpected JSON at `{}`", s.chars().take(20).collect::<String>())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Severity;

    fn diag(rule: &'static str, file: &str, message: &str) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line: 1,
            col: 1,
            rule,
            severity: Severity::Error,
            message: message.to_string(),
        }
    }

    #[test]
    fn roundtrip_render_parse_apply() {
        let d = diag("wallclock-in-round-loop", "crates/fl/src/centralized.rs", "`Instant::now` reads the wall clock");
        let rendered = Baseline::render(std::slice::from_ref(&d));
        let b = Baseline::parse(&rendered).expect("rendered baseline parses");
        assert_eq!(b.entries.len(), 1);
        assert_eq!(b.entries[0].context, "`Instant::now`");
        let out = b.apply(vec![d]);
        assert!(out.new.is_empty());
        assert_eq!(out.legacy.len(), 1);
        assert!(out.stale.is_empty());
    }

    #[test]
    fn unmatched_findings_are_new_and_unused_entries_stale() {
        let b = Baseline::parse(
            r#"{ "version": 1, "entries": [
                { "rule": "r-old", "file": "a.rs", "context": "", "reason": "legacy" }
            ] }"#,
        )
        .unwrap();
        let out = b.apply(vec![diag("r-new", "b.rs", "fresh finding")]);
        assert_eq!(out.new.len(), 1);
        assert!(out.legacy.is_empty());
        assert_eq!(out.stale, vec![0]);
    }

    #[test]
    fn one_entry_covers_multiple_findings() {
        let b = Baseline::parse(
            r#"{ "version": 1, "entries": [
                { "rule": "r", "file": "a.rs", "context": "`x`", "reason": "both sites checked" }
            ] }"#,
        )
        .unwrap();
        let out = b.apply(vec![diag("r", "a.rs", "use of `x` one"), diag("r", "a.rs", "use of `x` two")]);
        assert_eq!(out.legacy.len(), 2);
        assert!(out.new.is_empty());
    }

    #[test]
    fn missing_reason_is_rejected() {
        let err = Baseline::parse(
            r#"{ "version": 1, "entries": [ { "rule": "r", "file": "a.rs", "reason": " " } ] }"#,
        )
        .unwrap_err();
        assert!(err.contains("reason"), "{err}");
        let err2 = Baseline::parse(
            r#"{ "version": 1, "entries": [ { "rule": "r", "file": "a.rs" } ] }"#,
        )
        .unwrap_err();
        assert!(err2.contains("reason"), "{err2}");
    }

    #[test]
    fn malformed_json_is_an_error_not_an_empty_baseline() {
        assert!(Baseline::parse("{ \"version\": 1, \"entries\": [").is_err());
        assert!(Baseline::parse("[]").is_err());
        assert!(Baseline::parse("{ \"entries\": [] }").is_err());
        assert!(Baseline::parse("{ \"version\": 2, \"entries\": [] }").is_err());
    }
}
