//! Inline suppressions.
//!
//! A finding can be silenced at the offending site with a comment of the
//! form `fedcav-lint: allow(raw-exp-ln, reason = "sampling math, not a softmax")`
//! placed either at the end of the offending line or on the line directly
//! above it. The reason string is *mandatory* — an allow without a reason is
//! itself reported (`bad-suppression`), so the allowlist stays auditable.

use crate::diagnostics::{Diagnostic, Severity};
use crate::lexer::Token;

/// The marker that introduces a suppression inside a comment.
pub const MARKER: &str = "fedcav-lint:";

/// Rule name used for malformed-suppression findings.
pub const BAD_SUPPRESSION: &str = "bad-suppression";

/// One parsed suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule being allowed.
    pub rule: String,
    /// Line the comment starts on. The suppression covers this line and the
    /// next one (so it works both trailing and standing above the site).
    pub line: u32,
    /// Why the violation is acceptable here (mandatory, non-empty).
    pub reason: String,
}

impl Suppression {
    /// Whether this suppression silences a finding of `rule` at `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.rule == rule && (line == self.line || line == self.line + 1)
    }
}

/// Scan a file's tokens for suppression comments. Malformed ones become
/// `bad-suppression` diagnostics against `path`.
pub fn scan(path: &str, tokens: &[Token]) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut sups = Vec::new();
    let mut diags = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let Some(at) = t.text.find(MARKER) else { continue };
        let rest = &t.text[at + MARKER.len()..];
        match parse_allow(rest) {
            Ok((rule, reason)) => sups.push(Suppression { rule, line: t.line, reason }),
            Err(msg) => diags.push(Diagnostic {
                file: path.to_string(),
                line: t.line,
                col: t.col,
                rule: BAD_SUPPRESSION,
                severity: Severity::Error,
                message: msg,
            }),
        }
    }
    (sups, diags)
}

/// Parse `allow(<rule>, reason = "<text>")` (whitespace-tolerant) from the
/// text following the marker. Returns `(rule, reason)`.
fn parse_allow(rest: &str) -> Result<(String, String), String> {
    let mut s = rest.trim_start();
    s = s
        .strip_prefix("allow")
        .ok_or_else(|| format!("expected `allow(<rule>, reason = \"…\")` after `{MARKER}`"))?;
    s = s.trim_start();
    s = s.strip_prefix('(').ok_or_else(|| "expected `(` after `allow`".to_string())?;
    s = s.trim_start();
    let rule_len = s.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '-').count();
    if rule_len == 0 {
        return Err("expected a rule name inside `allow(…)`".to_string());
    }
    let rule = s[..rule_len].to_string();
    s = s[rule_len..].trim_start();
    s = s.strip_prefix(',').ok_or_else(|| {
        format!("suppression of `{rule}` is missing the mandatory `reason = \"…\"`")
    })?;
    s = s.trim_start();
    s = s
        .strip_prefix("reason")
        .ok_or_else(|| "expected `reason = \"…\"` after the rule name".to_string())?;
    s = s.trim_start();
    s = s.strip_prefix('=').ok_or_else(|| "expected `=` after `reason`".to_string())?;
    s = s.trim_start();
    s = s.strip_prefix('"').ok_or_else(|| "reason must be a quoted string".to_string())?;
    let end = s.find('"').ok_or_else(|| "unterminated reason string".to_string())?;
    let reason = s[..end].to_string();
    if reason.trim().is_empty() {
        return Err(format!("suppression of `{rule}` has an empty reason"));
    }
    let after = s[end + 1..].trim_start();
    if !after.starts_with(')') {
        return Err("expected `)` closing the allow".to_string());
    }
    Ok((rule, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan_src(src: &str) -> (Vec<Suppression>, Vec<Diagnostic>) {
        scan("f.rs", &lex(src))
    }

    #[test]
    fn parses_a_well_formed_allow() {
        let (sups, diags) = scan_src(
            "let x = 1; // fedcav-lint: allow(raw-exp-ln, reason = \"entropy, not softmax\")",
        );
        assert!(diags.is_empty());
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].rule, "raw-exp-ln");
        assert_eq!(sups[0].reason, "entropy, not softmax");
        assert!(sups[0].covers("raw-exp-ln", 1));
        assert!(sups[0].covers("raw-exp-ln", 2));
        assert!(!sups[0].covers("raw-exp-ln", 3));
        assert!(!sups[0].covers("no-debug-output", 1));
    }

    #[test]
    fn missing_reason_is_reported() {
        let (sups, diags) = scan_src("// fedcav-lint: allow(raw-exp-ln)");
        assert!(sups.is_empty());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, BAD_SUPPRESSION);
        assert!(diags[0].message.contains("reason"), "{}", diags[0].message);
    }

    #[test]
    fn empty_reason_is_reported() {
        let (_, diags) = scan_src("// fedcav-lint: allow(raw-exp-ln, reason = \"  \")");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("empty reason"));
    }

    #[test]
    fn garbage_after_marker_is_reported() {
        let (_, diags) = scan_src("// fedcav-lint: deny(everything)");
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn marker_inside_string_literal_is_ignored() {
        let (sups, diags) = scan_src("let s = \"fedcav-lint: allow(nonsense)\";");
        assert!(sups.is_empty());
        assert!(diags.is_empty());
    }

    #[test]
    fn block_comment_suppression_works() {
        let (sups, diags) =
            scan_src("/* fedcav-lint: allow(unchecked-float-cmp, reason = \"fixture\") */");
        assert!(diags.is_empty());
        assert_eq!(sups.len(), 1);
    }
}
