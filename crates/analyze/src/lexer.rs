//! A small Rust lexer producing position-annotated tokens.
//!
//! The rules in this crate match *token* sequences, never raw text, so a
//! `"call .unwrap() here"` string literal or a `// .exp() overflows` comment
//! can never trip a lint. The lexer therefore has to get exactly the tricky
//! parts of Rust's lexical grammar right: raw strings with arbitrary hash
//! fences, nested block comments, `'a` lifetimes vs `'a'` char literals,
//! string escapes, raw identifiers and shebang lines. It is deliberately
//! *tolerant*: malformed input (an unterminated string, a stray byte) still
//! produces a token stream rather than an error — a linter that dies on the
//! file it is checking helps nobody.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'_`).
    Lifetime,
    /// Integer or float literal, including suffixes (`1_000u64`, `0.5e-3`).
    Number,
    /// String literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Character or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `// …` line comment (includes doc comments `///` and `//!`).
    LineComment,
    /// `/* … */` block comment, nesting respected (may span lines).
    BlockComment,
    /// A single punctuation character (`.`, `[`, `!`, …). Multi-character
    /// operators are emitted as consecutive single-character tokens, which
    /// is all the rule matchers need.
    Punct,
}

/// One lexeme with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokenKind,
    /// The exact source text of the lexeme.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Token {
    /// Whether this token is a comment (trivia for the rule matchers).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consume characters while `f` holds, appending to `buf`.
    fn take_while(&mut self, buf: &mut String, f: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !f(c) {
                break;
            }
            buf.push(c);
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize Rust source. Never fails; see the module docs for the tolerance
/// policy.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer { chars: src.chars().collect(), pos: 0, line: 1, col: 1 };
    let mut out = Vec::new();

    // A shebang (`#!/usr/bin/env …`) is only special on the very first
    // line, and only when not an inner attribute (`#![…]`).
    if lx.peek() == Some('#') && lx.peek_at(1) == Some('!') && lx.peek_at(2) != Some('[') {
        let (line, col) = (lx.line, lx.col);
        let mut text = String::new();
        lx.take_while(&mut text, |c| c != '\n');
        out.push(Token { kind: TokenKind::LineComment, text, line, col });
    }

    while let Some(c) = lx.peek() {
        let (line, col) = (lx.line, lx.col);
        if c.is_whitespace() {
            lx.bump();
            continue;
        }

        // Comments.
        if c == '/' && lx.peek_at(1) == Some('/') {
            let mut text = String::new();
            lx.take_while(&mut text, |c| c != '\n');
            out.push(Token { kind: TokenKind::LineComment, text, line, col });
            continue;
        }
        if c == '/' && lx.peek_at(1) == Some('*') {
            let mut text = String::new();
            text.push(lx.bump().unwrap_or('/'));
            text.push(lx.bump().unwrap_or('*'));
            let mut depth = 1usize;
            while depth > 0 {
                match lx.peek() {
                    Some('/') if lx.peek_at(1) == Some('*') => {
                        depth += 1;
                        text.push(lx.bump().unwrap_or('/'));
                        text.push(lx.bump().unwrap_or('*'));
                    }
                    Some('*') if lx.peek_at(1) == Some('/') => {
                        depth -= 1;
                        text.push(lx.bump().unwrap_or('*'));
                        text.push(lx.bump().unwrap_or('/'));
                    }
                    Some(_) => {
                        if let Some(ch) = lx.bump() {
                            text.push(ch);
                        }
                    }
                    None => break, // unterminated: tolerate
                }
            }
            out.push(Token { kind: TokenKind::BlockComment, text, line, col });
            continue;
        }

        // Raw strings and raw identifiers: r"…", r#"…"#, r#ident.
        if c == 'r' {
            let mut hashes = 0usize;
            while lx.peek_at(1 + hashes) == Some('#') {
                hashes += 1;
            }
            if lx.peek_at(1 + hashes) == Some('"') {
                out.push(lex_raw_string(&mut lx, line, col));
                continue;
            }
            if hashes == 1 && lx.peek_at(2).is_some_and(is_ident_start) {
                // Raw identifier r#type: one token, prefix included.
                let mut text = String::new();
                text.push(lx.bump().unwrap_or('r'));
                text.push(lx.bump().unwrap_or('#'));
                lx.take_while(&mut text, is_ident_continue);
                out.push(Token { kind: TokenKind::Ident, text, line, col });
                continue;
            }
        }

        // Byte strings / byte chars: b"…", br#"…"#, b'…'.
        if c == 'b' {
            match lx.peek_at(1) {
                Some('"') => {
                    let mut text = String::new();
                    text.push(lx.bump().unwrap_or('b'));
                    lex_quoted(&mut lx, &mut text, '"');
                    out.push(Token { kind: TokenKind::Str, text, line, col });
                    continue;
                }
                Some('\'') => {
                    let mut text = String::new();
                    text.push(lx.bump().unwrap_or('b'));
                    lex_quoted(&mut lx, &mut text, '\'');
                    out.push(Token { kind: TokenKind::Char, text, line, col });
                    continue;
                }
                Some('r') => {
                    let mut hashes = 0usize;
                    while lx.peek_at(2 + hashes) == Some('#') {
                        hashes += 1;
                    }
                    if lx.peek_at(2 + hashes) == Some('"') {
                        let mut text = String::new();
                        text.push(lx.bump().unwrap_or('b'));
                        let mut t = lex_raw_string(&mut lx, line, col);
                        text.push_str(&t.text);
                        t.text = text;
                        out.push(t);
                        continue;
                    }
                }
                _ => {}
            }
        }

        if is_ident_start(c) {
            let mut text = String::new();
            lx.take_while(&mut text, is_ident_continue);
            out.push(Token { kind: TokenKind::Ident, text, line, col });
            continue;
        }

        if c.is_ascii_digit() {
            out.push(lex_number(&mut lx, line, col));
            continue;
        }

        if c == '"' {
            let mut text = String::new();
            lex_quoted(&mut lx, &mut text, '"');
            out.push(Token { kind: TokenKind::Str, text, line, col });
            continue;
        }

        // `'` opens either a char literal or a lifetime. A char literal is
        // `'` + (escape | single char) + `'`; a lifetime is `'` + ident with
        // *no* closing quote (`'a`, `'static`, `'_`).
        if c == '\'' {
            match lx.peek_at(1) {
                Some('\\') => {
                    // Escaped char literal ('\n', '\'', '\u{…}').
                    let mut text = String::new();
                    lex_quoted(&mut lx, &mut text, '\'');
                    out.push(Token { kind: TokenKind::Char, text, line, col });
                }
                Some(n) if is_ident_continue(n) && lx.peek_at(2) != Some('\'') => {
                    // Lifetime: 'a not followed by a closing quote.
                    let mut text = String::new();
                    text.push(lx.bump().unwrap_or('\''));
                    lx.take_while(&mut text, is_ident_continue);
                    out.push(Token { kind: TokenKind::Lifetime, text, line, col });
                }
                Some(_) => {
                    // Plain char literal ('a', '[', even '''). Consume the
                    // quote, the payload char, and a closing quote if there.
                    let mut text = String::new();
                    text.push(lx.bump().unwrap_or('\''));
                    if let Some(p) = lx.bump() {
                        text.push(p);
                    }
                    if lx.peek() == Some('\'') {
                        text.push(lx.bump().unwrap_or('\''));
                    }
                    out.push(Token { kind: TokenKind::Char, text, line, col });
                }
                None => {
                    lx.bump();
                    out.push(Token { kind: TokenKind::Punct, text: "'".to_string(), line, col });
                }
            }
            continue;
        }

        // Everything else: one punctuation character per token.
        if let Some(p) = lx.bump() {
            out.push(Token { kind: TokenKind::Punct, text: p.to_string(), line, col });
        }
    }
    out
}

/// Lex a `"…"`- or `'…'`-delimited literal with backslash escapes, starting
/// at the opening delimiter. Appends the text (delimiters included) to `buf`.
fn lex_quoted(lx: &mut Lexer, buf: &mut String, delim: char) {
    if let Some(d) = lx.bump() {
        buf.push(d); // opening delimiter
    }
    while let Some(c) = lx.peek() {
        if c == '\\' {
            if let Some(b) = lx.bump() {
                buf.push(b);
            }
            if let Some(esc) = lx.bump() {
                buf.push(esc);
            }
            continue;
        }
        if let Some(ch) = lx.bump() {
            buf.push(ch);
        }
        if c == delim {
            return;
        }
    }
    // Unterminated: tolerate (consumed to EOF).
}

/// Lex `r"…"` / `r#"…"#` starting at the `r`. The fence is however many
/// hashes followed the `r`; the body ends at `"` + that many hashes.
fn lex_raw_string(lx: &mut Lexer, line: u32, col: u32) -> Token {
    let mut text = String::new();
    text.push(lx.bump().unwrap_or('r')); // 'r'
    let mut hashes = 0usize;
    while lx.peek() == Some('#') {
        hashes += 1;
        text.push(lx.bump().unwrap_or('#'));
    }
    if lx.peek() == Some('"') {
        text.push(lx.bump().unwrap_or('"'));
    }
    loop {
        match lx.peek() {
            Some('"') => {
                // Candidate close: need `hashes` hashes right after.
                let mut all = true;
                for k in 0..hashes {
                    if lx.peek_at(1 + k) != Some('#') {
                        all = false;
                        break;
                    }
                }
                text.push(lx.bump().unwrap_or('"'));
                if all {
                    for _ in 0..hashes {
                        text.push(lx.bump().unwrap_or('#'));
                    }
                    break;
                }
            }
            Some(_) => {
                if let Some(c) = lx.bump() {
                    text.push(c);
                }
            }
            None => break, // unterminated: tolerate
        }
    }
    Token { kind: TokenKind::Str, text, line, col }
}

/// Lex a numeric literal starting at a digit. Handles `0xFF`, `1_000u64`,
/// `0.5`, `1e9`, `2.5e-3` — and stops before `..` so ranges stay punctuation
/// and before `.method()` so method calls on literals stay idents.
fn lex_number(lx: &mut Lexer, line: u32, col: u32) -> Token {
    let mut text = String::new();
    loop {
        lx.take_while(&mut text, |c| c.is_alphanumeric() || c == '_');
        // `1e-9` / `1E+9`: the sign belongs to the literal only right after
        // an exponent marker (and not in hex, where `e` is a digit).
        if !text.starts_with("0x")
            && !text.starts_with("0X")
            && (text.ends_with('e') || text.ends_with('E'))
            && matches!(lx.peek(), Some('+') | Some('-'))
        {
            if let Some(s) = lx.bump() {
                text.push(s);
            }
            continue;
        }
        // A `.` continues the literal only when followed by a digit
        // (so `0..10` and `1.max(2)` terminate the number).
        if lx.peek() == Some('.') && lx.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            if let Some(d) = lx.bump() {
                text.push(d);
            }
            continue;
        }
        break;
    }
    Token { kind: TokenKind::Number, text, line, col }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.unwrap();");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Ident, "a".into()),
                (TokenKind::Punct, ".".into()),
                (TokenKind::Ident, "unwrap".into()),
                (TokenKind::Punct, "(".into()),
                (TokenKind::Punct, ")".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn string_contents_are_not_idents() {
        let toks = kinds(r#"let s = "a.unwrap()";"#);
        assert!(toks.iter().all(|(_, t)| t != "unwrap"));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Str));
    }

    #[test]
    fn number_does_not_swallow_ranges_or_methods() {
        let toks = kinds("for i in 0..10 { 1.max(2); 0.5e-3; }");
        assert!(toks.contains(&(TokenKind::Number, "0".into())));
        assert!(toks.contains(&(TokenKind::Number, "10".into())));
        assert!(toks.contains(&(TokenKind::Ident, "max".into())));
        assert!(toks.contains(&(TokenKind::Number, "0.5e-3".into())));
    }

    #[test]
    fn hex_e_is_not_an_exponent() {
        let toks = kinds("0xAE-1");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Number, "0xAE".into()),
                (TokenKind::Punct, "-".into()),
                (TokenKind::Number, "1".into()),
            ]
        );
    }
}
