//! Self-hosted static analysis for the FedCav workspace.
//!
//! A dependency-free linter with two layers. The lexical layer matches
//! token sequences file by file; the semantic layer parses every file's
//! item tree ([`parser`]), builds a conservative workspace call graph
//! ([`callgraph`]), and scopes its rules by *reachability from the
//! round-loop roots* instead of by configured file lists.
//!
//! The invariants enforced:
//!
//! * [`rules::NoPanicInRoundLoop`] — the fault-tolerant round loop (PR 1)
//!   must degrade on client failure, never panic. Semantic: flags
//!   `unwrap`/`expect`/`panic!`-family/`[…]` indexing in any function
//!   reachable from `Simulation`, `ShardedSimulation`,
//!   `CentralizedTrainer`, the `fl::stages` pipeline, or any
//!   `Strategy`/`FaultModel`/`Interceptor` impl.
//! * The determinism auditor ([`rules::HashIterationOrder`],
//!   [`rules::WallclockInRoundLoop`], [`rules::SpawnOutsideExecutor`],
//!   [`rules::EnvReadOutsideOverride`]) — same reachability scope; flags
//!   the four nondeterminism sources that would silently void the
//!   bit-identity proofs: hash-order iteration, wall-clock reads, stray
//!   thread spawns, ambient env reads.
//! * [`rules::RawExpLn`] — `exp`/`ln` belong behind `fedcav-tensor`'s
//!   guarded numerics (log-sum-exp, clipped softmax), not scattered as raw
//!   calls that overflow for large losses.
//! * [`rules::UncheckedFloatCmp`] — NaN must not panic a sort or scramble
//!   a median; `total_cmp` only.
//! * [`rules::NoDebugOutput`] — library crates stay silent; stdout belongs
//!   to the bench harness.
//!
//! The pipeline: [`lexer::lex`] turns source into tokens (strings and
//! comments can never false-positive, because rules match token sequences,
//! not text); [`rules::SourceFile::parse`] layers on suppression comments
//! and `#[cfg(test)]` region detection; [`parser::parse_items`] recovers
//! the `fn`/`impl`/`trait`/`mod` item tree; [`engine::Engine`] runs the
//! per-file rules under the path [`rules::Config`] and the workspace rules
//! under call-graph reachability; the `fedcav-analyze` binary walks the
//! workspace, applies the committed [`baseline`] ratchet, and exits
//! nonzero under `--deny`.
//!
//! Findings are suppressed inline with a mandatory reason:
//!
//! ```text
//! // fedcav-lint: allow(raw-exp-ln, reason = "Box-Muller; u1 clamped away from 0")
//! ```
//!
//! Like `fedcav-trace`, this crate is std-only by design.

#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod diagnostics;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod suppress;
pub mod walk;

pub use baseline::{Baseline, BaselineEntry, BaselineOutcome};
pub use callgraph::{CallGraph, FnKey, Workspace, WorkspaceFile};
pub use diagnostics::{render_json, Diagnostic, Severity};
pub use engine::Engine;
pub use parser::{parse_items, FnItem};
pub use rules::{Config, PathRules, RootSpec, Rule, SourceFile, WorkspaceContext, WorkspaceRule};
pub use walk::walk_rs_files;
