//! Self-hosted static analysis for the FedCav workspace.
//!
//! A dependency-free lexical linter that enforces the invariants the rest
//! of the workspace is built around:
//!
//! * [`rules::no_panic::NoPanicInRoundLoop`] — the fault-tolerant round
//!   loop (PR 1) must degrade on client failure, never panic.
//! * [`rules::raw_exp_ln::RawExpLn`] — `exp`/`ln` belong behind
//!   `fedcav-tensor`'s guarded numerics (log-sum-exp, clipped softmax),
//!   not scattered as raw calls that overflow for large losses.
//! * [`rules::float_cmp::UncheckedFloatCmp`] — NaN must not panic a sort
//!   or scramble a median; `total_cmp` only.
//! * [`rules::debug_output::NoDebugOutput`] — library crates stay silent;
//!   stdout belongs to the bench harness.
//!
//! The pipeline: [`lexer::lex`] turns source into tokens (strings and
//! comments can never false-positive, because rules match token sequences,
//! not text); [`rules::SourceFile::parse`] layers on suppression comments
//! and `#[cfg(test)]` region detection; [`engine::Engine`] applies the
//! per-path [`rules::Config`] and filters suppressed findings; the
//! `fedcav-analyze` binary walks the workspace and exits nonzero under
//! `--deny`.
//!
//! Findings are suppressed inline with a mandatory reason:
//!
//! ```text
//! // fedcav-lint: allow(raw-exp-ln, reason = "Box-Muller; u1 clamped away from 0")
//! ```
//!
//! Like `fedcav-trace`, this crate is std-only by design.

#![warn(missing_docs)]

pub mod diagnostics;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod suppress;
pub mod walk;

pub use diagnostics::{render_json, Diagnostic, Severity};
pub use engine::Engine;
pub use rules::{Config, PathRules, Rule, SourceFile};
pub use walk::walk_rs_files;
