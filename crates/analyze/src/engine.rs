//! Drives the rules over source files: path scoping, test-region and
//! suppression filtering, deterministic ordering.

use crate::diagnostics::{Diagnostic, Severity};
use crate::rules::{default_rules, Config, Rule, SourceFile};
use crate::suppress::BAD_SUPPRESSION;
use std::fs;
use std::path::Path;

/// A configured rule set ready to lint files.
pub struct Engine {
    rules: Vec<Box<dyn Rule>>,
    config: Config,
}

impl Engine {
    /// The standard engine: all rules, the given scoping config.
    pub fn with_default_rules(config: Config) -> Engine {
        Engine { rules: default_rules(), config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// `(name, description)` of every registered rule.
    pub fn rule_list(&self) -> Vec<(&'static str, &'static str)> {
        self.rules.iter().map(|r| (r.name(), r.description())).collect()
    }

    /// Lint one file's source text. `path` must be the workspace-relative,
    /// forward-slash form — it is matched against the config and reported in
    /// findings verbatim.
    pub fn lint_source(&self, path: &str, src: &str) -> Vec<Diagnostic> {
        if !self.config.lints_path(path) {
            return Vec::new();
        }
        let (file, mut diags) = SourceFile::parse(path, src);
        // An allow naming a rule that doesn't exist silences nothing — most
        // likely a typo that leaves a real finding uncovered. Flag it.
        for s in &file.suppressions {
            if !self.rules.iter().any(|r| r.name() == s.rule) {
                diags.push(Diagnostic {
                    file: file.path.clone(),
                    line: s.line,
                    col: 1,
                    rule: BAD_SUPPRESSION,
                    severity: Severity::Error,
                    message: format!("allow of unknown rule `{}` (typo?)", s.rule),
                });
            }
        }
        let code = file.code();
        for rule in &self.rules {
            let scope = self.config.rules_for(rule.name());
            if let Some(scope) = scope {
                if !scope.applies_to(path) {
                    continue;
                }
            }
            let skip_tests = scope.map(|s| s.skip_test_code).unwrap_or(false);
            let mut found = Vec::new();
            rule.check(&file, &code, &mut found);
            found.retain(|d| !(skip_tests && file.in_test_code(d.line)));
            found.retain(|d| !file.suppressed(d.rule, d.line));
            diags.extend(found);
        }
        diags.sort_by_key(|d| (d.line, d.col));
        diags
    }

    /// Lint a list of files under `root`. Paths are reported relative to
    /// `root`. Returns `(findings, io_errors)` — an unreadable file is an
    /// error string, never a crash or a silent skip.
    pub fn lint_files(
        &self,
        root: &Path,
        files: &[std::path::PathBuf],
    ) -> (Vec<Diagnostic>, Vec<String>) {
        let mut diags = Vec::new();
        let mut errors = Vec::new();
        for f in files {
            let rel = f.strip_prefix(root).unwrap_or(f);
            let rel = rel.to_string_lossy().replace('\\', "/");
            match fs::read_to_string(f) {
                Ok(src) => diags.extend(self.lint_source(&rel, &src)),
                Err(e) => errors.push(format!("{}: {e}", f.display())),
            }
        }
        diags.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
        (diags, errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::with_default_rules(Config::fedcav_default())
    }

    #[test]
    fn globally_excluded_paths_yield_nothing() {
        let d =
            engine().lint_source("crates/fl/tests/x.rs", "fn f() { a.partial_cmp(b).unwrap(); }");
        assert!(d.is_empty());
    }

    #[test]
    fn findings_are_sorted_by_position() {
        let src = "fn f(x: f32, y: f32) {\n    let _ = x.partial_cmp(&y).unwrap();\n    let _ = x.exp();\n}\n";
        let d = engine().lint_source("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 2);
        assert!(d[0].line <= d[1].line);
    }

    #[test]
    fn rule_list_names_all_rules() {
        let names: Vec<&str> = engine().rule_list().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["no-panic-in-round-loop", "raw-exp-ln", "unchecked-float-cmp", "no-debug-output"]
        );
    }
}
