//! Drives the rules over source files: the per-file pass (path scoping,
//! test-region and suppression filtering) and the semantic workspace pass
//! (item parsing, call-graph construction, reachability, workspace rules),
//! with deterministic output ordering.

use crate::callgraph::{CallGraph, Workspace, WorkspaceFile};
use crate::diagnostics::{Diagnostic, Severity};
use crate::parser::parse_items;
use crate::rules::{
    default_rules, default_workspace_rules, Config, Rule, SourceFile, WorkspaceContext,
    WorkspaceRule,
};
use crate::suppress::BAD_SUPPRESSION;
use std::fs;
use std::path::Path;

/// A configured rule set ready to lint files.
pub struct Engine {
    rules: Vec<Box<dyn Rule>>,
    ws_rules: Vec<Box<dyn WorkspaceRule>>,
    config: Config,
}

impl Engine {
    /// The standard engine: all per-file and workspace rules, the given
    /// scoping config.
    pub fn with_default_rules(config: Config) -> Engine {
        Engine { rules: default_rules(), ws_rules: default_workspace_rules(), config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// `(name, description)` of every registered rule — workspace (semantic)
    /// rules first, then the per-file rules.
    pub fn rule_list(&self) -> Vec<(&'static str, &'static str)> {
        self.ws_rules
            .iter()
            .map(|r| (r.name(), r.description()))
            .chain(self.rules.iter().map(|r| (r.name(), r.description())))
            .collect()
    }

    /// Whether `name` is a registered rule (either kind).
    fn known_rule(&self, name: &str) -> bool {
        self.rules.iter().any(|r| r.name() == name)
            || self.ws_rules.iter().any(|r| r.name() == name)
    }

    /// Lint one file's source text with the **per-file rules only**. The
    /// semantic rules need the whole workspace; use [`Engine::analyze_sources`]
    /// or [`Engine::lint_files`] for those. `path` must be the
    /// workspace-relative, forward-slash form — it is matched against the
    /// config and reported in findings verbatim.
    pub fn lint_source(&self, path: &str, src: &str) -> Vec<Diagnostic> {
        if !self.config.lints_path(path) {
            return Vec::new();
        }
        let (file, parse_diags) = SourceFile::parse(path, src);
        let mut diags = self.check_file(&file, parse_diags);
        diags.sort_by_key(|d| (d.line, d.col));
        diags
    }

    /// The per-file pass over one parsed file: bad-suppression findings plus
    /// every per-file rule, scope/test/suppression filtered.
    fn check_file(&self, file: &SourceFile, mut diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        // An allow naming a rule that doesn't exist silences nothing — most
        // likely a typo that leaves a real finding uncovered. Flag it.
        for s in &file.suppressions {
            if !self.known_rule(&s.rule) {
                diags.push(Diagnostic {
                    file: file.path.clone(),
                    line: s.line,
                    col: 1,
                    rule: BAD_SUPPRESSION,
                    severity: Severity::Error,
                    message: format!("allow of unknown rule `{}` (typo?)", s.rule),
                });
            }
        }
        let code = file.code();
        for rule in &self.rules {
            let scope = self.config.rules_for(rule.name());
            if let Some(scope) = scope {
                if !scope.applies_to(&file.path) {
                    continue;
                }
            }
            let skip_tests = scope.map(|s| s.skip_test_code).unwrap_or(false);
            let mut found = Vec::new();
            rule.check(file, &code, &mut found);
            found.retain(|d| !(skip_tests && file.in_test_code(d.line)));
            found.retain(|d| !file.suppressed(d.rule, d.line));
            diags.extend(found);
        }
        diags
    }

    /// Run the **full pipeline** — per-file rules and the semantic workspace
    /// pass — over in-memory sources. Each entry is `(path, source)` with
    /// workspace-relative forward-slash paths. This is both the engine of
    /// [`Engine::lint_files`] and the fixture entry point: tests hand it a
    /// synthetic workspace and assert on reachability-scoped findings.
    pub fn analyze_sources(&self, sources: &[(String, String)]) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let mut files = Vec::new();
        for (path, src) in sources {
            let (file, parse_diags) = SourceFile::parse(path, src);
            let linted = self.config.lints_path(path);
            let graphed = linted && self.config.graphs_path(path);
            if linted {
                diags.extend(self.check_file(&file, parse_diags));
            }
            let fns = parse_items(&file.code());
            files.push(WorkspaceFile { source: file, fns, graphed });
        }
        let ws = Workspace { files };
        diags.extend(self.workspace_pass(&ws));
        diags.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
        diags.dedup_by(|a, b| {
            a.file == b.file && a.line == b.line && a.col == b.col && a.rule == b.rule
        });
        diags
    }

    /// The semantic pass: build the call graph, mark what is reachable from
    /// the configured roots, run the workspace rules, and filter each
    /// finding through the rule's exemption paths, test regions, and inline
    /// suppressions — the same discipline as the per-file pass.
    fn workspace_pass(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let graph = CallGraph::build(ws);
        let mut roots = Vec::new();
        for (id, &key) in graph.nodes.iter().enumerate() {
            let f = ws.item(key);
            if self.config.roots.is_root(f, &ws.files[key.0].source.path) {
                roots.push(id);
            }
        }
        let origin = graph.reachable_from(&roots);
        let ctx =
            WorkspaceContext { ws, graph: &graph, origin: &origin, config: &self.config };
        let mut out = Vec::new();
        for rule in &self.ws_rules {
            let scope = self.config.rules_for(rule.name());
            let skip_tests = scope.map(|s| s.skip_test_code).unwrap_or(false);
            let mut found = Vec::new();
            rule.check(&ctx, &mut found);
            found.retain(|d| {
                if scope.is_some_and(|s| !s.applies_to(&d.file)) {
                    return false;
                }
                let Some(wf) = ws.files.iter().find(|wf| wf.source.path == d.file) else {
                    return true;
                };
                if skip_tests && wf.source.in_test_code(d.line) {
                    return false;
                }
                !wf.source.suppressed(d.rule, d.line)
            });
            out.extend(found);
        }
        out
    }

    /// Lint a list of files under `root` with the full pipeline. Paths are
    /// reported relative to `root`. Returns `(findings, io_errors)` — an
    /// unreadable file is an error string, never a crash or a silent skip.
    pub fn lint_files(
        &self,
        root: &Path,
        files: &[std::path::PathBuf],
    ) -> (Vec<Diagnostic>, Vec<String>) {
        let mut sources = Vec::new();
        let mut errors = Vec::new();
        for f in files {
            let rel = f.strip_prefix(root).unwrap_or(f);
            let rel = rel.to_string_lossy().replace('\\', "/");
            match fs::read_to_string(f) {
                Ok(src) => sources.push((rel, src)),
                Err(e) => errors.push(format!("{}: {e}", f.display())),
            }
        }
        (self.analyze_sources(&sources), errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::with_default_rules(Config::fedcav_default())
    }

    fn srcs(files: &[(&str, &str)]) -> Vec<(String, String)> {
        files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect()
    }

    #[test]
    fn globally_excluded_paths_yield_nothing() {
        let d =
            engine().lint_source("crates/fl/tests/x.rs", "fn f() { a.partial_cmp(b).unwrap(); }");
        assert!(d.is_empty());
    }

    #[test]
    fn findings_are_sorted_by_position() {
        let src = "fn f(x: f32, y: f32) {\n    let _ = x.partial_cmp(&y).unwrap();\n    let _ = x.exp();\n}\n";
        let d = engine().lint_source("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 2);
        assert!(d[0].line <= d[1].line);
    }

    #[test]
    fn rule_list_names_all_rules() {
        let names: Vec<&str> = engine().rule_list().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "no-panic-in-round-loop",
                "hash-iteration-order",
                "wallclock-in-round-loop",
                "spawn-outside-executor",
                "env-read-outside-override",
                "raw-exp-ln",
                "unchecked-float-cmp",
                "no-debug-output",
            ]
        );
    }

    #[test]
    fn panic_reachability_follows_the_call_chain() {
        // root (Simulation method) → helper → deep: the unwrap in `deep` is
        // flagged; the unwrap in the uncalled `orphan` is not.
        let d = engine().analyze_sources(&srcs(&[
            (
                "crates/fl/src/server.rs",
                "pub struct Simulation;\nimpl Simulation {\n    pub fn run_round(&mut self) { helper(); }\n}\nfn helper() { deep(); }\n",
            ),
            (
                "crates/core/src/util.rs",
                "pub fn deep() { let v: Vec<u32> = Vec::new(); let _ = v.first().unwrap(); }\npub fn orphan() { let v: Vec<u32> = Vec::new(); let _ = v.first().unwrap(); }\n",
            ),
        ]));
        let np: Vec<&Diagnostic> =
            d.iter().filter(|d| d.rule == "no-panic-in-round-loop").collect();
        assert_eq!(np.len(), 1, "only the reachable unwrap is flagged: {d:?}");
        assert_eq!(np[0].file, "crates/core/src/util.rs");
        assert!(np[0].message.contains("reachable from `Simulation::run_round`"));
    }

    #[test]
    fn workspace_findings_respect_suppressions_and_test_code() {
        let d = engine().analyze_sources(&srcs(&[(
            "crates/fl/src/server.rs",
            "pub struct Simulation;\nimpl Simulation {\n    pub fn run_round(&mut self) {\n        // fedcav-lint: allow(no-panic-in-round-loop, reason = \"len checked above\")\n        let _ = [1][0];\n    }\n}\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = [1][0]; }\n}\n",
        )]));
        assert!(
            d.iter().all(|d| d.rule != "no-panic-in-round-loop"),
            "suppressed + test-code findings filtered: {d:?}"
        );
    }
}
