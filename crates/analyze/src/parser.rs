//! A brace-aware item parser on top of the tolerant lexer.
//!
//! [`parse_items`] turns a file's token stream into a flat list of
//! [`FnItem`]s — every `fn` in the file, each annotated with the inline
//! module chain it sits in, the `impl`/`trait` block enclosing it (type
//! and trait names), its source line span, and the token range of its
//! body. That is exactly the shape the workspace [`crate::callgraph`]
//! needs to build a symbol table and extract call sites, and the shape
//! the semantic rules need to scan "only the body of this function".
//!
//! Like the lexer, the parser is *tolerant*: it never errors. Input it
//! cannot make sense of (macro soup, half-edited code) degrades to
//! fewer/looser items, not a crash — a linter that dies on the file it is
//! checking helps nobody. It is not a full Rust parser; it understands
//! precisely enough structure to be right about item boundaries:
//!
//! * nested items (`mod` in `mod`, `impl` inside a test `fn`),
//! * generics with nested angle brackets, where the closing `>>` of
//!   `Vec<Vec<f32>>` arrives as two separate `>` tokens,
//! * `->` and `=>` arrows, whose `>` must not close an angle bracket,
//! * const-generic braces inside `<…>`,
//! * `fn` pointer types (`let f: fn(usize) -> u32`), which are not items,
//! * `macro_rules!` definitions, whose bodies are skipped wholesale
//!   (their `fn` fragments are not items),
//! * where-clauses containing `Fn() -> T` bounds.

use crate::lexer::Token;

/// One `fn` item (free function, inherent/trait-impl method, or trait
/// default method) found in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Inline `mod` chain enclosing the item within this file (the file
    /// itself contributes its path, not an entry here).
    pub modules: Vec<String>,
    /// `Self` type name of the enclosing `impl`/`trait` block, if any
    /// (`impl Foo { fn m() }` → `Some("Foo")`; for a trait definition's
    /// default method this is the trait name).
    pub self_type: Option<String>,
    /// Trait name when the enclosing block is `impl Trait for Type` or a
    /// `trait Trait { … }` definition.
    pub trait_name: Option<String>,
    /// Whether the first parameter is a `self` receiver (method).
    pub has_receiver: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing `}` (or of the terminating `;`
    /// for a bodiless signature).
    pub end_line: u32,
    /// Half-open range of *code-token* indices (the same indexing as
    /// [`crate::rules::SourceFile::code`]) spanning the body, braces
    /// included. `None` for bodiless signatures.
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// Whether the code-token index `i` falls inside this item's body.
    pub fn contains(&self, i: usize) -> bool {
        self.body.is_some_and(|(lo, hi)| i >= lo && i < hi)
    }
}

/// What kind of brace-delimited region the parser is inside.
#[derive(Debug)]
enum Scope {
    /// `mod name { … }`
    Module(String),
    /// `impl Type { … }` / `impl Trait for Type { … }`
    Impl { self_type: String, trait_name: Option<String> },
    /// `trait Name { … }` definition.
    TraitDef(String),
    /// A `fn` body; the index into the output `fns` vec to close out.
    Fn(usize),
    /// Any other `{ … }` (struct/enum/match/block/struct literal…).
    Block,
}

/// Parse every `fn` item out of `code` — the file's non-comment tokens,
/// exactly as returned by [`crate::rules::SourceFile::code`].
pub fn parse_items(code: &[&Token]) -> Vec<FnItem> {
    let mut fns: Vec<FnItem> = Vec::new();
    let mut stack: Vec<Scope> = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];

        // `macro_rules! name { … }`: skip the whole definition; its `fn`
        // fragments are templates, not items.
        if t.is_ident("macro_rules") && code.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            let mut j = i + 2;
            while j < code.len() && !code[j].is_punct('{') {
                j += 1;
            }
            i = skip_balanced(code, j, '{', '}');
            continue;
        }

        if t.is_ident("mod") {
            // `mod name {` opens a module scope; `mod name;` is external.
            if let Some(name) = code.get(i + 1).filter(|n| is_name(n)) {
                if code.get(i + 2).is_some_and(|n| n.is_punct('{')) {
                    stack.push(Scope::Module(name.text.clone()));
                    i += 3;
                    continue;
                }
            }
            i += 1;
            continue;
        }

        if t.is_ident("impl") {
            if let Some((scope, after)) = parse_impl_header(code, i) {
                stack.push(scope);
                i = after;
                continue;
            }
            i += 1;
            continue;
        }

        if t.is_ident("trait") {
            if let Some(name) = code.get(i + 1).filter(|n| is_name(n)) {
                let name = name.text.clone();
                // Skip generics/supertraits/where-clause up to `{` or `;`.
                let mut j = i + 2;
                let mut angle = 0i32;
                while j < code.len() {
                    let c = code[j];
                    if is_angle_open(code, j) {
                        angle += 1;
                    } else if is_angle_close(code, j) {
                        angle -= 1;
                    } else if c.is_punct('{') && angle <= 0 {
                        stack.push(Scope::TraitDef(name));
                        j += 1;
                        break;
                    } else if c.is_punct(';') && angle <= 0 {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
            i += 1;
            continue;
        }

        if t.is_ident("fn") {
            // `fn` is an item only when followed by a name (`fn(` is a
            // function-pointer type).
            if let Some(name_tok) = code.get(i + 1).filter(|n| is_name(n)) {
                let (item, after, has_body) = parse_fn(code, i, name_tok, &stack);
                fns.push(item);
                if has_body {
                    stack.push(Scope::Fn(fns.len() - 1));
                }
                i = after;
                continue;
            }
            i += 1;
            continue;
        }

        if t.is_punct('{') {
            stack.push(Scope::Block);
            i += 1;
            continue;
        }

        if t.is_punct('}') {
            match stack.pop() {
                Some(Scope::Fn(idx)) => {
                    if let Some(f) = fns.get_mut(idx) {
                        f.end_line = t.line;
                        if let Some((lo, _)) = f.body {
                            f.body = Some((lo, i + 1));
                        }
                    }
                }
                Some(_) => {}
                None => {} // tolerate: stray close brace
            }
            i += 1;
            continue;
        }

        i += 1;
    }
    // Tolerate unterminated bodies: close them at EOF.
    for s in stack {
        if let Scope::Fn(idx) = s {
            if let Some(f) = fns.get_mut(idx) {
                f.end_line = code.last().map(|t| t.line).unwrap_or(f.line);
                if let Some((lo, _)) = f.body {
                    f.body = Some((lo, code.len()));
                }
            }
        }
    }
    fns
}

/// Whether `t` can be an item name (identifier, keywords excluded enough
/// for our purposes — the lexer does not distinguish).
fn is_name(t: &Token) -> bool {
    t.kind == crate::lexer::TokenKind::Ident
        && !matches!(t.text.as_str(), "for" | "where" | "impl" | "fn" | "mod" | "trait")
}

/// Whether the `<` at `i` opens a generic-argument list (as opposed to a
/// less-than comparison, which cannot appear in the header positions where
/// this is consulted).
fn is_angle_open(code: &[&Token], i: usize) -> bool {
    code[i].is_punct('<')
}

/// Whether the `>` at `i` closes an angle bracket — i.e. is not the tail
/// of a `->` or `=>` arrow.
fn is_angle_close(code: &[&Token], i: usize) -> bool {
    code[i].is_punct('>')
        && !(i > 0 && (code[i - 1].is_punct('-') || code[i - 1].is_punct('=')))
}

/// Skip from the opening delimiter at `open_idx` (or the first `open` at or
/// after it) to just past its matching close. Tolerant: EOF ends the scan.
fn skip_balanced(code: &[&Token], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut j = open_idx;
    while j < code.len() {
        if code[j].is_punct(open) {
            depth += 1;
        } else if code[j].is_punct(close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    code.len()
}

/// Parse an `impl` header starting at the `impl` token. Returns the scope
/// and the index just past the opening `{`, or `None` when no body brace
/// is found (e.g. `impl Trait` used as a type — not an item header).
fn parse_impl_header(code: &[&Token], impl_idx: usize) -> Option<(Scope, usize)> {
    let mut j = impl_idx + 1;
    let mut angle = 0i32;
    // Collected type-path segments at angle depth 0, split on `for`.
    let mut before_for: Vec<String> = Vec::new();
    let mut after_for: Vec<String> = Vec::new();
    let mut seen_for = false;
    let mut in_where = false;
    while j < code.len() {
        let t = code[j];
        if is_angle_open(code, j) {
            angle += 1;
        } else if is_angle_close(code, j) {
            angle -= 1;
        } else if t.is_punct('{') {
            if angle <= 0 {
                let names = if seen_for { &after_for } else { &before_for };
                let self_type = names.last().cloned()?;
                let trait_name =
                    if seen_for { before_for.last().cloned() } else { None };
                return Some((Scope::Impl { self_type, trait_name }, j + 1));
            }
            // Const-generic expression braces inside `<…>`: skip.
            j = skip_balanced(code, j, '{', '}');
            continue;
        } else if t.is_punct(';') && angle <= 0 {
            return None; // `impl Foo;`? tolerate as non-item
        } else if angle <= 0 && t.kind == crate::lexer::TokenKind::Ident {
            match t.text.as_str() {
                "for" => seen_for = true,
                "where" => in_where = true,
                "dyn" | "mut" | "const" | "unsafe" => {}
                name if !in_where => {
                    if seen_for {
                        after_for.push(name.to_string());
                    } else {
                        before_for.push(name.to_string());
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Parse a `fn` item starting at the `fn` keyword, `name_tok` being the
/// following name token. Returns the item, the index to resume scanning at
/// (just past the opening `{`, or past the `;`), and whether a body opened.
fn parse_fn(
    code: &[&Token],
    fn_idx: usize,
    name_tok: &Token,
    stack: &[Scope],
) -> (FnItem, usize, bool) {
    let mut modules = Vec::new();
    let mut self_type = None;
    let mut trait_name = None;
    for s in stack {
        match s {
            Scope::Module(m) => modules.push(m.clone()),
            Scope::Impl { self_type: ty, trait_name: tr } => {
                self_type = Some(ty.clone());
                trait_name = tr.clone();
            }
            Scope::TraitDef(name) => {
                self_type = Some(name.clone());
                trait_name = Some(name.clone());
            }
            _ => {}
        }
    }

    // Scan the signature: optional generics, the parameter list (checking
    // for a `self` receiver), return type and where-clause, up to `{`/`;`.
    let mut j = fn_idx + 2;
    let mut angle = 0i32;
    let mut has_receiver = false;
    let mut seen_params = false;
    while j < code.len() {
        let t = code[j];
        if is_angle_open(code, j) {
            angle += 1;
        } else if is_angle_close(code, j) {
            angle -= 1;
        } else if t.is_punct('(') && !seen_params && angle <= 0 {
            let end = skip_balanced(code, j, '(', ')');
            // A receiver is an ident `self` before the first depth-1 comma.
            let mut depth = 0usize;
            for k in j..end {
                if code[k].is_punct('(') || code[k].is_punct('[') {
                    depth += 1;
                } else if code[k].is_punct(')') || code[k].is_punct(']') {
                    depth = depth.saturating_sub(1);
                } else if code[k].is_punct(',') && depth == 1 {
                    break;
                } else if code[k].is_ident("self") && depth == 1 {
                    has_receiver = true;
                    break;
                }
            }
            seen_params = true;
            j = end;
            continue;
        } else if t.is_punct('{') && angle <= 0 && seen_params {
            let item = FnItem {
                name: name_tok.text.clone(),
                modules,
                self_type,
                trait_name,
                has_receiver,
                line: code[fn_idx].line,
                end_line: t.line, // provisional; fixed when the body closes
                body: Some((j, j + 1)), // end fixed when the body closes
            };
            return (item, j + 1, true);
        } else if t.is_punct(';') && angle <= 0 {
            let item = FnItem {
                name: name_tok.text.clone(),
                modules,
                self_type,
                trait_name,
                has_receiver,
                line: code[fn_idx].line,
                end_line: t.line,
                body: None,
            };
            return (item, j + 1, false);
        }
        j += 1;
    }
    // EOF mid-signature: tolerate as a bodiless item.
    let item = FnItem {
        name: name_tok.text.clone(),
        modules,
        self_type,
        trait_name,
        has_receiver,
        line: code[fn_idx].line,
        end_line: code.last().map(|t| t.line).unwrap_or(code[fn_idx].line),
        body: None,
    };
    (item, code.len(), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<FnItem> {
        let toks = lex(src);
        let code: Vec<&Token> = toks.iter().filter(|t| !t.is_comment()).collect();
        parse_items(&code)
    }

    #[test]
    fn free_fn_and_method_are_distinguished() {
        let fns = items("fn free() {}\nimpl Foo { fn m(&self) {} fn assoc() {} }\n");
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[0].name, "free");
        assert!(fns[0].self_type.is_none());
        assert_eq!(fns[1].self_type.as_deref(), Some("Foo"));
        assert!(fns[1].has_receiver);
        assert!(!fns[2].has_receiver);
    }

    #[test]
    fn trait_impl_records_trait_and_type() {
        let fns = items("impl Strategy for FedAvg { fn aggregate(&mut self) {} }");
        assert_eq!(fns[0].trait_name.as_deref(), Some("Strategy"));
        assert_eq!(fns[0].self_type.as_deref(), Some("FedAvg"));
    }

    #[test]
    fn generic_impl_with_nested_angles_and_where_clause() {
        let fns = items(
            "impl<'a, T: Into<Vec<Vec<f32>>>> Runner<T> for Sim<'a, T>\n\
             where T: Fn() -> Vec<f32> {\n    fn run(&mut self, x: T) -> Vec<f32> { x() }\n}\n",
        );
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].trait_name.as_deref(), Some("Runner"));
        assert_eq!(fns[0].self_type.as_deref(), Some("Sim"));
        assert!(fns[0].has_receiver);
    }

    #[test]
    fn fn_pointer_type_is_not_an_item() {
        let fns = items("fn f() { let g: fn(usize) -> u32 = h; g(1); }");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "f");
    }

    #[test]
    fn body_token_range_covers_the_braces() {
        let src = "fn a() { x(); }\nfn b() {}";
        let toks = lex(src);
        let code: Vec<&Token> = toks.iter().filter(|t| !t.is_comment()).collect();
        let fns = parse_items(&code);
        let (lo, hi) = fns[0].body.expect("has body");
        assert!(code[lo].is_punct('{'));
        assert!(code[hi - 1].is_punct('}'));
        assert!((lo..hi).any(|i| code[i].is_ident("x")));
        assert!(!(lo..hi).any(|i| code[i].is_ident("b")));
    }
}
