//! Workspace traversal: find every `.rs` file, deterministically.

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "node_modules"];

/// Recursively collect `.rs` files under `root`, sorted, skipping build
/// output and VCS internals. IO problems are collected, not fatal.
pub fn walk_rs_files(root: &Path) -> (Vec<PathBuf>, Vec<String>) {
    let mut files = Vec::new();
    let mut errors = Vec::new();
    walk(root, &mut files, &mut errors);
    files.sort();
    (files, errors)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>, errors: &mut Vec<String>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            errors.push(format!("{}: {e}", dir.display()));
            return;
        }
    };
    for entry in entries {
        let entry = match entry {
            Ok(e) => e,
            Err(e) => {
                errors.push(format!("{}: {e}", dir.display()));
                continue;
            }
        };
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                walk(&path, files, errors);
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_crate_and_skips_target() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let (files, errors) = walk_rs_files(root);
        assert!(errors.is_empty(), "{errors:?}");
        assert!(files.iter().any(|f| f.ends_with("src/walk.rs")));
        assert!(files.iter().all(|f| !f.components().any(|c| c.as_os_str() == "target")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk order is deterministic");
    }
}
