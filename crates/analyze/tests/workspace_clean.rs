//! The acceptance gate: the linter run over its own workspace — including
//! this crate's sources — must produce zero findings. Any new violation
//! anywhere in the repo fails `cargo test` before it ever reaches CI's
//! `fedcav-analyze --deny` step.

use fedcav_analyze::{walk_rs_files, Config, Engine};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/analyze -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate lives two levels below the workspace root")
}

#[test]
fn the_workspace_is_lint_clean() {
    let root = workspace_root();
    assert!(root.join("Cargo.toml").is_file(), "walked from the wrong root: {root:?}");

    let (files, walk_errors) = walk_rs_files(root);
    assert!(walk_errors.is_empty(), "walk errors: {walk_errors:?}");
    assert!(files.len() > 50, "expected the whole workspace, found {} files", files.len());

    let engine = Engine::with_default_rules(Config::fedcav_default());
    let (diags, read_errors) = engine.lint_files(root, &files);
    assert!(read_errors.is_empty(), "read errors: {read_errors:?}");

    let report: Vec<String> = diags.iter().map(|d| d.human()).collect();
    assert!(
        diags.is_empty(),
        "fedcav-analyze found {} violation(s) in the workspace:\n{}",
        diags.len(),
        report.join("\n")
    );
}

#[test]
fn the_linter_lints_its_own_sources() {
    // Guard against the walk silently skipping this crate: the self-clean
    // test above is only meaningful if analyze's own files are in the set.
    let root = workspace_root();
    let (files, _) = walk_rs_files(root);
    for needle in ["analyze/src/lexer.rs", "analyze/src/suppress.rs", "analyze/src/engine.rs"] {
        assert!(
            files.iter().any(|f| f.to_string_lossy().replace('\\', "/").ends_with(needle)),
            "{needle} missing from the walk"
        );
    }
}
