//! The acceptance gate: the full semantic pipeline run over its own
//! workspace — including this crate's sources — must produce zero findings
//! beyond the committed baseline (`analyze-baseline.json`). Any *new*
//! violation anywhere in the repo fails `cargo test` before it ever reaches
//! CI's `fedcav-analyze --deny` step; a *fixed* legacy finding must take its
//! baseline entry with it (stale entries fail too, so the ratchet only
//! tightens).

use fedcav_analyze::{walk_rs_files, Baseline, Config, Engine};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/analyze -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate lives two levels below the workspace root")
}

#[test]
fn the_workspace_is_lint_clean_modulo_the_baseline() {
    let root = workspace_root();
    assert!(root.join("Cargo.toml").is_file(), "walked from the wrong root: {root:?}");

    let (files, walk_errors) = walk_rs_files(root);
    assert!(walk_errors.is_empty(), "walk errors: {walk_errors:?}");
    assert!(files.len() > 50, "expected the whole workspace, found {} files", files.len());

    let engine = Engine::with_default_rules(Config::fedcav_default());
    let (diags, read_errors) = engine.lint_files(root, &files);
    assert!(read_errors.is_empty(), "read errors: {read_errors:?}");

    let baseline_path = root.join("analyze-baseline.json");
    let raw = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", baseline_path.display()));
    let baseline = Baseline::parse(&raw).unwrap_or_else(|e| panic!("bad baseline: {e}"));
    let outcome = baseline.apply(diags);

    let report: Vec<String> = outcome.new.iter().map(|d| d.human()).collect();
    assert!(
        outcome.new.is_empty(),
        "fedcav-analyze found {} NEW violation(s) in the workspace (fix them or \
         justify them in analyze-baseline.json):\n{}",
        outcome.new.len(),
        report.join("\n")
    );
    let stale: Vec<&str> =
        outcome.stale.iter().map(|&i| baseline.entries[i].file.as_str()).collect();
    assert!(
        outcome.stale.is_empty(),
        "baseline entries no longer match any finding — delete them so the \
         ratchet tightens: {stale:?}"
    );
}

#[test]
fn every_baseline_entry_carries_a_real_reason() {
    // `Baseline::parse` already rejects empty reasons; this guards against
    // committing the `--write-baseline` skeleton's TODO placeholders.
    let raw = std::fs::read_to_string(workspace_root().join("analyze-baseline.json")).unwrap();
    let baseline = Baseline::parse(&raw).unwrap();
    assert!(!baseline.entries.is_empty(), "empty baseline should just be deleted");
    for e in &baseline.entries {
        assert!(
            !e.reason.starts_with("TODO"),
            "{}:{} baseline entry still has a placeholder reason",
            e.file,
            e.rule
        );
    }
}

#[test]
fn the_linter_lints_its_own_sources() {
    // Guard against the walk silently skipping this crate: the self-clean
    // test above is only meaningful if analyze's own files are in the set.
    let root = workspace_root();
    let (files, _) = walk_rs_files(root);
    for needle in ["analyze/src/lexer.rs", "analyze/src/suppress.rs", "analyze/src/engine.rs"] {
        assert!(
            files.iter().any(|f| f.to_string_lossy().replace('\\', "/").ends_with(needle)),
            "{needle} missing from the walk"
        );
    }
}
