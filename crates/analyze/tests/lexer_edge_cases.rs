//! Edge cases the lexer must survive without misclassifying tokens — each
//! one is a way a text-based linter would false-positive.

use fedcav_analyze::lexer::{lex, TokenKind};

fn kinds(src: &str) -> Vec<(TokenKind, String)> {
    lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
}

fn idents(src: &str) -> Vec<String> {
    lex(src).into_iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect()
}

#[test]
fn raw_string_contents_are_opaque() {
    // `.unwrap()` inside a raw string must not produce ident tokens.
    let src = r###"let s = r#"x.unwrap() and panic!"#;"###;
    assert_eq!(idents(src), vec!["let", "s"]);
    let strs: Vec<_> = lex(src).into_iter().filter(|t| t.kind == TokenKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert!(strs[0].text.contains("unwrap"));
}

#[test]
fn raw_string_with_more_hashes_than_needed() {
    let src = "r##\"contains \"# inner\"##";
    let toks = kinds(src);
    assert_eq!(toks.len(), 1);
    assert_eq!(toks[0].0, TokenKind::Str);
    assert!(toks[0].1.contains("\"# inner"));
}

#[test]
fn nested_block_comments_close_correctly() {
    let src = "/* outer /* inner */ still comment */ after";
    assert_eq!(idents(src), vec!["after"]);
}

#[test]
fn unterminated_block_comment_is_tolerated() {
    let src = "/* never closed\nunwrap()";
    // Everything folds into the comment; no ident escapes, no panic.
    assert!(idents(src).is_empty());
}

#[test]
fn lifetime_is_not_a_char_literal() {
    let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
    let lifetimes: Vec<_> =
        lex(src).into_iter().filter(|t| t.kind == TokenKind::Lifetime).collect();
    assert_eq!(lifetimes.len(), 3);
    assert!(lifetimes.iter().all(|t| t.text == "'a"));
    assert!(lex(src).iter().all(|t| t.kind != TokenKind::Char));
}

#[test]
fn char_literal_is_not_a_lifetime() {
    let src = "let c = 'a'; let n = '\\n'; let q = '\\'';";
    let chars: Vec<_> = lex(src).into_iter().filter(|t| t.kind == TokenKind::Char).collect();
    assert_eq!(chars.len(), 3);
}

#[test]
fn static_lifetime_and_char_mix() {
    let src = "const S: &'static str = \"x\"; let c = 's';";
    let toks = lex(src);
    assert!(toks.iter().any(|t| t.kind == TokenKind::Lifetime && t.text == "'static"));
    assert!(toks.iter().any(|t| t.kind == TokenKind::Char && t.text == "'s'"));
}

#[test]
fn string_escapes_do_not_end_the_literal_early() {
    let src = r#"let s = "quote \" then .unwrap()"; done"#;
    assert_eq!(idents(src), vec!["let", "s", "done"]);
}

#[test]
fn shebang_line_is_skipped() {
    let src = "#!/usr/bin/env run-cargo-script\nfn main() {}";
    assert_eq!(idents(src), vec!["fn", "main"]);
}

#[test]
fn inner_attribute_is_not_a_shebang() {
    // `#![allow(...)]` at file start must still tokenize as `#` `!` `[` ...
    let src = "#![allow(dead_code)]\nfn main() {}";
    assert_eq!(idents(src), vec!["allow", "dead_code", "fn", "main"]);
}

#[test]
fn raw_identifiers_are_single_tokens() {
    // `r#type` is one Ident token (prefix included) — crucially NOT a raw
    // string, and the keyword never escapes as a bare token.
    let src = "let r#type = 1; let r#match = r#type;";
    let names = idents(src);
    assert_eq!(names.iter().filter(|n| n.as_str() == "r#type").count(), 2);
    assert!(names.iter().any(|n| n == "r#match"));
    assert!(lex(src).iter().all(|t| t.kind != TokenKind::Str));
}

#[test]
fn byte_strings_and_byte_chars() {
    let src = "let a = b\"bytes.unwrap()\"; let b = b'x'; let c = br#\"raw\"#;";
    assert!(!idents(src).contains(&"unwrap".to_string()));
    let strs = lex(src).into_iter().filter(|t| t.kind == TokenKind::Str).count();
    assert_eq!(strs, 2);
}

#[test]
fn numbers_do_not_swallow_method_calls_or_ranges() {
    let src = "let x = 1.exp(); let r = 0..10; let f = 1.5e-3;";
    let names = idents(src);
    assert!(names.contains(&"exp".to_string()), "1.exp() keeps `exp` as an ident");
    let nums: Vec<_> =
        lex(src).into_iter().filter(|t| t.kind == TokenKind::Number).map(|t| t.text).collect();
    assert!(nums.contains(&"1.5e-3".to_string()));
    assert!(nums.contains(&"0".to_string()) && nums.contains(&"10".to_string()));
}

#[test]
fn line_and_column_positions_survive_multibyte_text() {
    let src = "// naïve comment — with dashes\nlet x = 1;\n";
    let toks = lex(src);
    let let_tok = toks.iter().find(|t| t.is_ident("let")).unwrap();
    assert_eq!((let_tok.line, let_tok.col), (2, 1));
}

#[test]
fn doc_comments_are_comments() {
    let src = "/// calls .unwrap() — documented, not executed\nfn f() {}";
    let toks = lex(src);
    assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::LineComment).count(), 1);
    assert_eq!(idents(src), vec!["fn", "f"]);
}
