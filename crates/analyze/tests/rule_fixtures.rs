//! Seeded-violation fixtures: every rule must fire on its violation, stay
//! quiet on the compliant variant, and honour its suppression comment.
//!
//! Per-file rules lint one source in isolation; the semantic rules
//! (`no-panic-in-round-loop` and the determinism family) get a synthetic
//! *workspace* — a root method on `Simulation` plus whatever helpers the
//! fixture needs — because their scope is call-graph reachability, not
//! path lists.

use fedcav_analyze::{Config, Engine};

fn engine() -> Engine {
    Engine::with_default_rules(Config::fedcav_default())
}

/// Lint `src` as if it lived at `path`, returning the rule names that fired.
fn fired(path: &str, src: &str) -> Vec<String> {
    engine().lint_source(path, src).into_iter().map(|d| d.rule.to_string()).collect()
}

/// Run the full pipeline over a synthetic workspace, returning
/// `(rule, file, line)` triples.
fn ws_fired(files: &[(&str, &str)]) -> Vec<(String, String, u32)> {
    let sources: Vec<(String, String)> =
        files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
    engine()
        .analyze_sources(&sources)
        .into_iter()
        .map(|d| (d.rule.to_string(), d.file, d.line))
        .collect()
}

/// Wrap `body` in a `Simulation::run_round` — the canonical reachability
/// root — at the canonical server path.
fn root_file(body: &str) -> String {
    format!("pub struct Simulation;\nimpl Simulation {{\n    pub fn run_round(&mut self) {{\n{body}\n    }}\n}}\n")
}

const SERVER_PATH: &str = "crates/fl/src/server.rs";
const LIB_PATH: &str = "crates/core/src/weights.rs";

// ---- no-panic-in-round-loop ------------------------------------------------

#[test]
fn no_panic_fires_on_unwrap_expect_and_macros() {
    let src = root_file(
        "        let x: Option<u32> = None;\n\
         \x20       let a = x.unwrap();\n\
         \x20       let b = x.expect(\"msg\");\n\
         \x20       if a == b { panic!(\"boom\"); }\n\
         \x20       unreachable!()",
    );
    let hits = ws_fired(&[(SERVER_PATH, &src)]);
    assert_eq!(
        hits.iter().filter(|(r, _, _)| r == "no-panic-in-round-loop").count(),
        4,
        "{hits:?}"
    );
}

#[test]
fn no_panic_fires_on_slice_indexing_but_not_array_literals() {
    let src = root_file(
        "        let v: Vec<f32> = Vec::new();\n\
         \x20       let i = 0usize;\n\
         \x20       for x in [1.0, 2.0] {\n\
         \x20           let _ = x;\n\
         \x20       }\n\
         \x20       let ok: &[usize] = &[1, 2];\n\
         \x20       let _ = ok.len();\n\
         \x20       let _ = v[i];",
    );
    let hits = ws_fired(&[(SERVER_PATH, &src)]);
    assert_eq!(hits.len(), 1, "only the `v[i]` index expression: {hits:?}");
    assert_eq!(hits[0].0, "no-panic-in-round-loop");
}

#[test]
fn no_panic_follows_reachability_not_paths() {
    // The helper lives in a crate with no path-based no-panic scope at all;
    // it is flagged anyway because `Simulation::run_round` calls it. Its
    // uncalled sibling in the same file is not.
    let hits = ws_fired(&[
        (SERVER_PATH, "pub struct Simulation;\nimpl Simulation {\n    pub fn run_round(&mut self) { reached(); }\n}\n"),
        (
            LIB_PATH,
            "pub fn reached() { let v: Vec<u32> = Vec::new(); let _ = v.first().unwrap(); }\n\
             pub fn orphan() { let v: Vec<u32> = Vec::new(); let _ = v.first().unwrap(); }\n",
        ),
    ]);
    let np: Vec<_> = hits.iter().filter(|(r, _, _)| r == "no-panic-in-round-loop").collect();
    assert_eq!(np.len(), 1, "{hits:?}");
    assert_eq!(np[0].1, LIB_PATH);
}

#[test]
fn no_panic_roots_include_strategy_impls_and_stage_fns() {
    // A Strategy impl and an fl::stages free function are roots even though
    // nothing calls them inside the fixture workspace.
    let hits = ws_fired(&[
        (
            "crates/fl/src/custom.rs",
            "pub struct MyStrategy;\nimpl Strategy for MyStrategy {\n    fn aggregate(&self) { let v: Vec<u32> = Vec::new(); let _ = v[0]; }\n}\n",
        ),
        (
            "crates/fl/src/stages/train.rs",
            "pub fn local_training() { let x: Option<u32> = None; let _ = x.unwrap(); }\n",
        ),
    ]);
    let files: Vec<&str> = hits
        .iter()
        .filter(|(r, _, _)| r == "no-panic-in-round-loop")
        .map(|(_, f, _)| f.as_str())
        .collect();
    assert!(files.contains(&"crates/fl/src/custom.rs"), "{hits:?}");
    assert!(files.contains(&"crates/fl/src/stages/train.rs"), "{hits:?}");
}

#[test]
fn no_panic_skips_test_code() {
    let src = "pub struct Simulation;\n\
               impl Simulation {\n\
               \x20   pub fn run_round(&mut self) { helper(); }\n\
               }\n\
               fn helper() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   #[test]\n\
               \x20   fn t() { Some(1).unwrap(); }\n\
               }\n";
    assert!(ws_fired(&[(SERVER_PATH, src)]).is_empty());
}

#[test]
fn no_panic_respects_suppression() {
    let src = root_file(
        "        let x: Option<u32> = Some(1);\n\
         \x20       // fedcav-lint: allow(no-panic-in-round-loop, reason = \"infallible by construction\")\n\
         \x20       let _ = x.unwrap();",
    );
    assert!(ws_fired(&[(SERVER_PATH, &src)]).is_empty());
}

// ---- determinism auditor ---------------------------------------------------

#[test]
fn hash_iteration_fires_on_iter_and_for_but_not_keyed_access() {
    let src = root_file(
        "        let mut m = std::collections::HashMap::new();\n\
         \x20       m.insert(1u32, 2u32);\n\
         \x20       let _ = m.get(&1);\n\
         \x20       for v in m.values() { let _ = v; }\n\
         \x20       for kv in &m { let _ = kv; }",
    );
    let hits = ws_fired(&[(SERVER_PATH, &src)]);
    let hi: Vec<_> = hits.iter().filter(|(r, _, _)| r == "hash-iteration-order").collect();
    assert_eq!(hi.len(), 2, "values() and the for-loop, not insert/get: {hits:?}");
}

#[test]
fn wallclock_fires_in_reachable_code_but_not_in_trace() {
    // `stamp` is *reachable* (the root calls it) but lives in fedcav-trace,
    // the sanctioned exemption path — only the in-loop read is flagged.
    let hits = ws_fired(&[
        (
            SERVER_PATH,
            &root_file("        let _ = std::time::Instant::now();\n        stamp();"),
        ),
        (
            "crates/trace/src/span.rs",
            "pub fn stamp() -> std::time::Instant { std::time::Instant::now() }\n",
        ),
    ]);
    let wc: Vec<_> = hits.iter().filter(|(r, _, _)| r == "wallclock-in-round-loop").collect();
    assert_eq!(wc.len(), 1, "{hits:?}");
    assert_eq!(wc[0].1, SERVER_PATH, "fedcav-trace is the sanctioned site");
}

#[test]
fn spawn_fires_outside_the_executor_only() {
    // `execute_clients` is reachable and spawns, but lives in fl::executor,
    // the one sanctioned parallelism site — only the in-loop spawn is flagged.
    let hits = ws_fired(&[
        (
            SERVER_PATH,
            &root_file("        let h = thread::spawn(|| 1); drop(h);\n        execute_clients();"),
        ),
        (
            "crates/fl/src/executor.rs",
            "pub fn execute_clients() { let h = thread::spawn(|| 1); drop(h); }\n",
        ),
    ]);
    let sp: Vec<_> = hits.iter().filter(|(r, _, _)| r == "spawn-outside-executor").collect();
    assert_eq!(sp.len(), 1, "{hits:?}");
    assert_eq!(sp[0].1, SERVER_PATH, "fl::executor is the sanctioned site");
}

#[test]
fn env_read_fires_outside_the_override_points() {
    let src = root_file("        let _ = std::env::var(\"FEDCAV_SEED\");");
    let hits = ws_fired(&[(SERVER_PATH, &src)]);
    assert!(
        hits.iter().any(|(r, _, _)| r == "env-read-outside-override"),
        "{hits:?}"
    );
}

#[test]
fn determinism_rules_stay_quiet_on_unreachable_code() {
    // Same nondeterminism, but in a function nothing round-loop-rooted calls.
    let src = "pub fn offline_report() {\n\
               \x20   let _ = std::time::Instant::now();\n\
               \x20   let h = thread::spawn(|| 1); drop(h);\n\
               }\n";
    assert!(ws_fired(&[(LIB_PATH, src)]).is_empty());
}

// ---- raw-exp-ln ------------------------------------------------------------

#[test]
fn raw_exp_ln_fires_outside_numerics() {
    let src = "fn w(l: f32) -> f32 { l.exp() / (1.0 + l).ln() }";
    let rules = fired(LIB_PATH, src);
    assert_eq!(rules.iter().filter(|r| r.as_str() == "raw-exp-ln").count(), 2);
}

#[test]
fn raw_exp_ln_is_silent_in_the_numerics_module() {
    let src = "fn logsumexp(x: f32) -> f32 { x.exp().ln() }";
    assert!(fired("crates/tensor/src/numerics.rs", src).is_empty());
}

#[test]
fn raw_exp_ln_ignores_non_method_idents() {
    let src = "struct Exp; fn exp() {} fn f() { exp(); let e = Exp; let _ = e; }";
    assert!(fired(LIB_PATH, src).is_empty(), "only `.exp(`/`.ln(` method calls count");
}

#[test]
fn raw_exp_ln_respects_suppression() {
    let src = "fn f(x: f32) -> f32 {\n\
               \x20   // fedcav-lint: allow(raw-exp-ln, reason = \"x is clamped to [0, 1]\")\n\
               \x20   x.exp()\n\
               }\n";
    assert!(fired(LIB_PATH, src).is_empty());
}

// ---- unchecked-float-cmp ---------------------------------------------------

#[test]
fn float_cmp_fires_on_unwrap_and_unwrap_or() {
    let src = "fn f(a: f32, b: f32) {\n\
               \x20   let _ = a.partial_cmp(&b).unwrap();\n\
               \x20   let _ = a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal);\n\
               }\n";
    let rules = fired(LIB_PATH, src);
    assert_eq!(rules.iter().filter(|r| r.as_str() == "unchecked-float-cmp").count(), 2);
}

#[test]
fn float_cmp_allows_total_cmp_and_handled_partial_cmp() {
    let src = "fn f(a: f32, b: f32) -> std::cmp::Ordering {\n\
               \x20   match a.partial_cmp(&b) {\n\
               \x20       Some(o) => o,\n\
               \x20       None => a.total_cmp(&b),\n\
               \x20   }\n\
               }\n";
    assert!(fired(LIB_PATH, src).is_empty());
}

#[test]
fn float_cmp_fires_even_in_test_code() {
    // Nondeterministic sorts in tests produce flaky tests; no test exemption.
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               \x20   #[test]\n\
               \x20   fn t() { let _ = 1.0f32.partial_cmp(&2.0).unwrap(); }\n\
               }\n";
    assert!(fired(LIB_PATH, src).contains(&"unchecked-float-cmp".to_string()));
}

#[test]
fn float_cmp_respects_suppression() {
    let src = "fn f(a: f32, b: f32) {\n\
               \x20   // fedcav-lint: allow(unchecked-float-cmp, reason = \"inputs proven finite above\")\n\
               \x20   let _ = a.partial_cmp(&b).unwrap();\n\
               }\n";
    assert!(fired(LIB_PATH, src).is_empty());
}

// ---- no-debug-output -------------------------------------------------------

#[test]
fn debug_output_fires_in_library_code() {
    let src = "fn f(x: u32) { println!(\"{x}\"); dbg!(x); eprintln!(\"{x}\"); }";
    let rules = fired(LIB_PATH, src);
    assert_eq!(rules.iter().filter(|r| r.as_str() == "no-debug-output").count(), 3);
}

#[test]
fn debug_output_is_allowed_in_binaries_and_bench() {
    let src = "fn main() { println!(\"report\"); }";
    assert!(fired("crates/bench/src/output.rs", src).is_empty());
    assert!(fired("src/main.rs", src).is_empty());
}

#[test]
fn debug_output_skips_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { println!(\"dbg\"); }\n}\n";
    assert!(fired(LIB_PATH, src).is_empty());
}

// ---- suppression machinery -------------------------------------------------

#[test]
fn suppression_only_covers_its_own_rule() {
    let src = "fn f(a: f32, b: f32) {\n\
               \x20   // fedcav-lint: allow(raw-exp-ln, reason = \"wrong rule named\")\n\
               \x20   let _ = a.partial_cmp(&b).unwrap();\n\
               }\n";
    assert!(fired(LIB_PATH, src).contains(&"unchecked-float-cmp".to_string()));
}

#[test]
fn suppression_does_not_leak_past_the_next_line() {
    let src = "fn f(a: f32, b: f32) {\n\
               \x20   // fedcav-lint: allow(unchecked-float-cmp, reason = \"first only\")\n\
               \x20   let _ = a.partial_cmp(&b).unwrap();\n\
               \x20   let _ = b.partial_cmp(&a).unwrap();\n\
               }\n";
    let rules = fired(LIB_PATH, src);
    assert_eq!(rules.iter().filter(|r| r.as_str() == "unchecked-float-cmp").count(), 1);
}

#[test]
fn suppression_without_reason_is_itself_a_finding() {
    let src = "fn f() {\n    // fedcav-lint: allow(raw-exp-ln)\n}\n";
    let diags = engine().lint_source(LIB_PATH, src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "bad-suppression");
}

#[test]
fn unknown_rule_name_in_suppression_is_a_finding() {
    let src = "fn f() {\n    // fedcav-lint: allow(no-such-rule, reason = \"typo\")\n}\n";
    let diags = engine().lint_source(LIB_PATH, src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "bad-suppression");
}
