//! Seeded-violation fixtures: every rule must fire on its violation, stay
//! quiet on the compliant variant, and honour its suppression comment.

use fedcav_analyze::{Config, Engine};

fn engine() -> Engine {
    Engine::with_default_rules(Config::fedcav_default())
}

/// Lint `src` as if it lived at `path`, returning the rule names that fired.
fn fired(path: &str, src: &str) -> Vec<String> {
    engine().lint_source(path, src).into_iter().map(|d| d.rule.to_string()).collect()
}

const SERVER_PATH: &str = "crates/fl/src/server.rs";
const LIB_PATH: &str = "crates/core/src/weights.rs";

// ---- no-panic-in-round-loop ------------------------------------------------

#[test]
fn no_panic_fires_on_unwrap_expect_and_macros() {
    let src = "fn agg(x: Option<u32>) -> u32 {\n\
               \x20   let a = x.unwrap();\n\
               \x20   let b = x.expect(\"msg\");\n\
               \x20   if a == b { panic!(\"boom\"); }\n\
               \x20   unreachable!()\n\
               }\n";
    let rules = fired(SERVER_PATH, src);
    assert_eq!(rules.iter().filter(|r| r.as_str() == "no-panic-in-round-loop").count(), 4);
}

#[test]
fn no_panic_fires_on_slice_indexing_but_not_array_literals() {
    let src = "fn f(v: &[f32], i: usize) -> f32 {\n\
               \x20   for x in [1.0, 2.0] {\n\
               \x20       let _ = x;\n\
               \x20   }\n\
               \x20   let ok: &[usize] = &[1, 2];\n\
               \x20   let _ = ok.len();\n\
               \x20   v[i]\n\
               }\n";
    let diags = engine().lint_source(SERVER_PATH, src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "no-panic-in-round-loop");
    assert_eq!(diags[0].line, 7, "only the `v[i]` index expression");
}

#[test]
fn no_panic_is_scoped_to_the_round_loop_files() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    assert!(fired(SERVER_PATH, src).contains(&"no-panic-in-round-loop".to_string()));
    assert!(
        !fired(LIB_PATH, src).contains(&"no-panic-in-round-loop".to_string()),
        "out-of-scope files may unwrap"
    );
}

#[test]
fn no_panic_skips_test_code() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               \x20   #[test]\n\
               \x20   fn t() { Some(1).unwrap(); }\n\
               }\n";
    assert!(fired(SERVER_PATH, src).is_empty());
}

#[test]
fn no_panic_respects_suppression() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               \x20   // fedcav-lint: allow(no-panic-in-round-loop, reason = \"infallible by construction\")\n\
               \x20   x.unwrap()\n\
               }\n";
    assert!(fired(SERVER_PATH, src).is_empty());
}

// ---- raw-exp-ln ------------------------------------------------------------

#[test]
fn raw_exp_ln_fires_outside_numerics() {
    let src = "fn w(l: f32) -> f32 { l.exp() / (1.0 + l).ln() }";
    let rules = fired(LIB_PATH, src);
    assert_eq!(rules.iter().filter(|r| r.as_str() == "raw-exp-ln").count(), 2);
}

#[test]
fn raw_exp_ln_is_silent_in_the_numerics_module() {
    let src = "fn logsumexp(x: f32) -> f32 { x.exp().ln() }";
    assert!(fired("crates/tensor/src/numerics.rs", src).is_empty());
}

#[test]
fn raw_exp_ln_ignores_non_method_idents() {
    let src = "struct Exp; fn exp() {} fn f() { exp(); let e = Exp; let _ = e; }";
    assert!(fired(LIB_PATH, src).is_empty(), "only `.exp(`/`.ln(` method calls count");
}

#[test]
fn raw_exp_ln_respects_suppression() {
    let src = "fn f(x: f32) -> f32 {\n\
               \x20   // fedcav-lint: allow(raw-exp-ln, reason = \"x is clamped to [0, 1]\")\n\
               \x20   x.exp()\n\
               }\n";
    assert!(fired(LIB_PATH, src).is_empty());
}

// ---- unchecked-float-cmp ---------------------------------------------------

#[test]
fn float_cmp_fires_on_unwrap_and_unwrap_or() {
    let src = "fn f(a: f32, b: f32) {\n\
               \x20   let _ = a.partial_cmp(&b).unwrap();\n\
               \x20   let _ = a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal);\n\
               }\n";
    let rules = fired(LIB_PATH, src);
    assert_eq!(rules.iter().filter(|r| r.as_str() == "unchecked-float-cmp").count(), 2);
}

#[test]
fn float_cmp_allows_total_cmp_and_handled_partial_cmp() {
    let src = "fn f(a: f32, b: f32) -> std::cmp::Ordering {\n\
               \x20   match a.partial_cmp(&b) {\n\
               \x20       Some(o) => o,\n\
               \x20       None => a.total_cmp(&b),\n\
               \x20   }\n\
               }\n";
    assert!(fired(LIB_PATH, src).is_empty());
}

#[test]
fn float_cmp_fires_even_in_test_code() {
    // Nondeterministic sorts in tests produce flaky tests; no test exemption.
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               \x20   #[test]\n\
               \x20   fn t() { let _ = 1.0f32.partial_cmp(&2.0).unwrap(); }\n\
               }\n";
    assert!(fired(LIB_PATH, src).contains(&"unchecked-float-cmp".to_string()));
}

#[test]
fn float_cmp_respects_suppression() {
    let src = "fn f(a: f32, b: f32) {\n\
               \x20   // fedcav-lint: allow(unchecked-float-cmp, reason = \"inputs proven finite above\")\n\
               \x20   let _ = a.partial_cmp(&b).unwrap();\n\
               }\n";
    assert!(fired(LIB_PATH, src).is_empty());
}

// ---- no-debug-output -------------------------------------------------------

#[test]
fn debug_output_fires_in_library_code() {
    let src = "fn f(x: u32) { println!(\"{x}\"); dbg!(x); eprintln!(\"{x}\"); }";
    let rules = fired(LIB_PATH, src);
    assert_eq!(rules.iter().filter(|r| r.as_str() == "no-debug-output").count(), 3);
}

#[test]
fn debug_output_is_allowed_in_binaries_and_bench() {
    let src = "fn main() { println!(\"report\"); }";
    assert!(fired("crates/bench/src/output.rs", src).is_empty());
    assert!(fired("src/main.rs", src).is_empty());
}

#[test]
fn debug_output_skips_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { println!(\"dbg\"); }\n}\n";
    assert!(fired(LIB_PATH, src).is_empty());
}

// ---- suppression machinery -------------------------------------------------

#[test]
fn suppression_only_covers_its_own_rule() {
    let src = "fn f(a: f32, b: f32) {\n\
               \x20   // fedcav-lint: allow(raw-exp-ln, reason = \"wrong rule named\")\n\
               \x20   let _ = a.partial_cmp(&b).unwrap();\n\
               }\n";
    assert!(fired(LIB_PATH, src).contains(&"unchecked-float-cmp".to_string()));
}

#[test]
fn suppression_does_not_leak_past_the_next_line() {
    let src = "fn f(a: f32, b: f32) {\n\
               \x20   // fedcav-lint: allow(unchecked-float-cmp, reason = \"first only\")\n\
               \x20   let _ = a.partial_cmp(&b).unwrap();\n\
               \x20   let _ = b.partial_cmp(&a).unwrap();\n\
               }\n";
    let rules = fired(LIB_PATH, src);
    assert_eq!(rules.iter().filter(|r| r.as_str() == "unchecked-float-cmp").count(), 1);
}

#[test]
fn suppression_without_reason_is_itself_a_finding() {
    let src = "fn f() {\n    // fedcav-lint: allow(raw-exp-ln)\n}\n";
    let diags = engine().lint_source(LIB_PATH, src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "bad-suppression");
}

#[test]
fn unknown_rule_name_in_suppression_is_a_finding() {
    let src = "fn f() {\n    // fedcav-lint: allow(no-such-rule, reason = \"typo\")\n}\n";
    let diags = engine().lint_source(LIB_PATH, src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "bad-suppression");
}
