//! **EXT — kernel scaling trajectory:** GFLOP/s of the blocked vs
//! reference matmul kernel as the problem grows, plus the conv
//! forward/backward pair at LeNet-5 shapes and the end-to-end mean round
//! wall-clock under both kernel modes. The table answers "where does the
//! cache-blocked kernel start paying off, and how much of it survives to
//! the round loop" (DESIGN.md §12; `BENCH_kernels.json` is the archived
//! form of the same numbers, written by the `kernel_bench` binary).
//!
//! Run: `cargo bench -p fedcav-bench --bench kernel_scaling`
//! (add `-- --full` for more repetitions and the e2e figure at fast
//! experiment scale).

use fedcav_bench::experiment::Scale;
use fedcav_bench::kernelbench::{
    bench_conv, bench_e2e, bench_matmul, e2e_spec, ConvShape, KernelReport, MatmulShape,
};
use fedcav_tensor::KernelMode;

fn main() {
    let scale = Scale::from_args();
    let (reps, tiny_e2e) = match scale {
        Scale::Fast => (5, true),
        Scale::Full => (11, false),
    };

    let mut report = KernelReport::default();
    for s in [16usize, 32, 64, 128, 256, 384] {
        report.kernels.extend(bench_matmul(MatmulShape::cube(s), reps));
    }
    for shape in [
        ConvShape { n: 4, c: 1, hw: 28, oc: 6, k: 5 },
        ConvShape { n: 4, c: 6, hw: 12, oc: 16, k: 5 },
    ] {
        report.kernels.extend(bench_conv(shape, reps));
    }

    println!("# kernel_scaling: reps={reps}");
    println!("kernel\tshape\tblocked_gflops\treference_gflops\tspeedup");
    let mut seen: Vec<(&str, String)> = Vec::new();
    for k in &report.kernels {
        let key = (k.kernel, k.shape.clone());
        if seen.contains(&key) {
            continue;
        }
        let blocked = report
            .kernels
            .iter()
            .find(|o| o.kernel == k.kernel && o.shape == k.shape && o.mode == "blocked");
        let reference = report
            .kernels
            .iter()
            .find(|o| o.kernel == k.kernel && o.shape == k.shape && o.mode == "reference");
        if let (Some(b), Some(r)) = (blocked, reference) {
            let speedup = report.speedup(k.kernel, &k.shape).unwrap_or(0.0);
            println!("{}\t{}\t{:.3}\t{:.3}\t{:.2}", k.kernel, k.shape, b.gflops, r.gflops, speedup);
        }
        seen.push(key);
    }

    let spec = e2e_spec(tiny_e2e);
    println!("mode\tmean_round_wall_s\trounds");
    for mode in [KernelMode::Blocked, KernelMode::Reference] {
        let e = bench_e2e(&spec, mode);
        println!("{}\t{:.4}\t{}", e.mode, e.mean_round_wall_secs, e.rounds);
    }
}
