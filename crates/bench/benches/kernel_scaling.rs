//! **EXT — kernel scaling trajectory:** GFLOP/s of every tensor backend
//! (blocked, reference, f16) as the matmul problem grows, plus the conv
//! forward/backward pair at LeNet-5 shapes and the end-to-end mean round
//! wall-clock per backend. The table answers "where does the
//! cache-blocked kernel start paying off, and how much of it survives to
//! the round loop" (DESIGN.md §12; `BENCH_kernels.json` is the archived
//! form of the same numbers, written by the `kernel_bench` binary).
//!
//! Run: `cargo bench -p fedcav-bench --bench kernel_scaling`
//! (add `-- --full` for more repetitions and the e2e figure at fast
//! experiment scale).

use fedcav_bench::experiment::Scale;
use fedcav_bench::kernelbench::{
    backend_token, bench_conv, bench_e2e, bench_matmul, e2e_spec, ConvShape, KernelReport,
    MatmulShape,
};
use fedcav_tensor::BackendKind;

fn main() {
    let scale = Scale::from_args();
    let (reps, tiny_e2e) = match scale {
        Scale::Fast => (5, true),
        Scale::Full => (11, false),
    };

    let mut report = KernelReport::default();
    for s in [16usize, 32, 64, 128, 256, 384] {
        report.kernels.extend(bench_matmul(MatmulShape::cube(s), reps));
    }
    for shape in [
        ConvShape { n: 4, c: 1, hw: 28, oc: 6, k: 5 },
        ConvShape { n: 4, c: 6, hw: 12, oc: 16, k: 5 },
    ] {
        report.kernels.extend(bench_conv(shape, reps));
    }

    println!("# kernel_scaling: reps={reps}");
    println!("kernel\tshape\tblocked_gflops\treference_gflops\tf16_gflops\tspeedup");
    let mut seen: Vec<(&str, String)> = Vec::new();
    for k in &report.kernels {
        let key = (k.kernel, k.shape.clone());
        if seen.contains(&key) {
            continue;
        }
        let row = |backend: &str| {
            report
                .kernels
                .iter()
                .find(|o| o.kernel == k.kernel && o.shape == k.shape && o.backend == backend)
        };
        if let (Some(b), Some(r), Some(h)) = (row("blocked"), row("reference"), row("f16")) {
            let speedup = report.speedup(k.kernel, &k.shape).unwrap_or(0.0);
            println!(
                "{}\t{}\t{:.3}\t{:.3}\t{:.3}\t{:.2}",
                k.kernel, k.shape, b.gflops, r.gflops, h.gflops, speedup
            );
        }
        seen.push(key);
    }

    let spec = e2e_spec(tiny_e2e);
    println!("backend\tmean_round_wall_s\trounds");
    for kind in BackendKind::ALL {
        let e = bench_e2e(&spec, kind);
        assert_eq!(e.backend, backend_token(kind));
        println!("{}\t{:.4}\t{}", e.backend, e.mean_round_wall_secs, e.rounds);
    }
}
