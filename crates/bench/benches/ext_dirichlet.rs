//! **Extension (beyond the paper's evaluation):** FedAvg vs FedProx vs
//! FedCav under Dirichlet(α) label skew — the modern non-IID benchmark
//! protocol (Hsu et al.) — instead of the paper's 2-class shard scheme.
//! Also prints the realised heterogeneity statistics (label entropy, size
//! Gini) so the skew level is auditable.
//!
//! Expected: same ordering as Table 4 — FedCav's margin grows as α shrinks
//! (more skew).
//!
//! Run: `cargo bench -p fedcav-bench --bench ext_dirichlet [-- --full]`

use fedcav_bench::experiment::{Algo, ExperimentSpec, Scale};
use fedcav_bench::output;
use fedcav_data::{dirichlet_partition, PartitionStats, SyntheticKind};
use fedcav_fl::Simulation;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let spec = ExperimentSpec::at(scale, SyntheticKind::MnistLike, 15, 50);
    let alphas = [0.1f64, 0.5, 5.0];

    output::meta("experiment", "ext_dirichlet (Dirichlet label skew, extension)");
    output::meta("scale", format!("{scale:?}"));
    output::header(&["alpha/algo", "round", "accuracy", "test_loss", "note"]);

    for &alpha in &alphas {
        let (train, test) = spec.data().expect("data");
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xD1C1);
        let part = dirichlet_partition(&train, spec.n_clients, alpha, &mut rng);
        let stats = PartitionStats::compute(&part, &train);
        println!(
            "# alpha={alpha}: label_entropy={:.3}, size_gini={:.3}, classes/client={:.2}",
            stats.mean_label_entropy, stats.size_gini, stats.mean_classes_per_client
        );
        for algo in [Algo::FedAvg, Algo::FedProx, Algo::FedCav] {
            let factory = spec.model_factory();
            let clients = part.client_datasets(&train).expect("partition");
            let mut sim = Simulation::new(
                &*factory,
                clients,
                test.clone(),
                algo.strategy(),
                spec.sim_config(),
            );
            sim.run(spec.rounds).expect("simulation");
            let label = format!("a={alpha}/{}", algo.name());
            output::series(&label, sim.history());
            output::summary(&label, sim.history(), 5);
        }
    }
}
