//! **E3 — Fig. 4:** classification accuracy under dynamic data — a fraction
//! α ∈ {0.1, 0.3, 0.5} of the classes is *fresh* (absent from
//! pre-training); curves compare Centralized / FedCav / FedAvg / FedProx
//! per communication round.
//!
//! Expected shape (paper): Centralized is the upper bound; FedCav recovers
//! accuracy on the fresh classes faster than FedAvg/FedProx (≈34% fewer
//! rounds to converge), with the gap widening as α grows.
//!
//! Fast scale runs MNIST-like only; `--full` runs all three tiers.
//!
//! Run: `cargo bench -p fedcav-bench --bench fig4_fresh_class [-- --full]`

use fedcav_bench::experiment::{run_fresh_class, Algo, Dist, ExperimentSpec, Scale};
use fedcav_bench::output;
use fedcav_data::SyntheticKind;

fn main() {
    let scale = Scale::from_args();
    let kinds: &[SyntheticKind] = match scale {
        Scale::Fast => &[SyntheticKind::MnistLike],
        Scale::Full => {
            &[SyntheticKind::MnistLike, SyntheticKind::FmnistLike, SyntheticKind::Cifar10Like]
        }
    };
    let alphas = [0.1f64, 0.3, 0.5];
    let algos = [Algo::Centralized, Algo::FedCav, Algo::FedAvg, Algo::FedProx];
    let pretrain_rounds = match scale {
        Scale::Fast => 3,
        Scale::Full => 10,
    };

    output::meta("experiment", "fig4_fresh_class (dynamic fresh-class data)");
    output::meta("scale", format!("{scale:?}"));
    output::meta("pretrain_rounds", pretrain_rounds);
    output::header(&["dataset/alpha/algo", "round", "accuracy", "test_loss", "note"]);

    for &kind in kinds {
        let spec = ExperimentSpec::at(scale, kind, 15, 60);
        let (_, test) = spec.data().expect("data");
        for &alpha in &alphas {
            let mut summaries = Vec::new();
            for algo in algos {
                let label = format!("{}/a={alpha}/{}", kind.name(), algo.name());
                let out =
                    run_fresh_class(&spec, alpha, Dist::NonIidBalanced, algo, pretrain_rounds)
                        .unwrap_or_else(|e| panic!("{label}: {e}"));
                output::series(&label, &out.history);
                let recall = out
                    .fresh_recall(&spec, &test)
                    .expect("confusion evaluation")
                    .map(|r| format!("{r:.4}"))
                    .unwrap_or_else(|| "-".into());
                summaries.push((label, out.history, recall));
            }
            for (label, h, recall) in &summaries {
                output::summary(label, h, 5);
                // The paper's speed claim: rounds until 90% accuracy.
                let speed = h
                    .rounds_to_accuracy(0.9)
                    .map(|r| (r + 1).to_string())
                    .unwrap_or_else(|| ">end".into());
                println!("## {label}\tfresh_class_recall={recall}\trounds_to_90pct={speed}");
            }
        }
    }
}
