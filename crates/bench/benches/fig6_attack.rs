//! **E5 — Fig. 6:** a model-replacement attack (adversary trained on fully
//! label-flipped data, boosted per Eq. 11) strikes at a fixed round; curves
//! compare FedAvg vs FedCav-without-detection recovering afterwards.
//!
//! Expected shape (paper): accuracy collapses to near zero at the attack
//! round for both; FedCav (without detection) recovers somewhat faster /
//! at least as fast, but recovery is slow and tortuous for both — which is
//! what motivates the detection mechanism measured in Fig. 7.
//!
//! Run: `cargo bench -p fedcav-bench --bench fig6_attack [-- --full]`

use fedcav_bench::experiment::{run_under_attack, Algo, Dist, ExperimentSpec, Scale};
use fedcav_bench::output;
use fedcav_data::SyntheticKind;

fn main() {
    let scale = Scale::from_args();
    let kinds: &[SyntheticKind] = match scale {
        Scale::Fast => &[SyntheticKind::MnistLike],
        Scale::Full => {
            &[SyntheticKind::MnistLike, SyntheticKind::FmnistLike, SyntheticKind::Cifar10Like]
        }
    };
    // The paper attacks "at the second round" of an already-warmed-up
    // deployment (§5.2.1 pre-trains before comparing); model replacement
    // presupposes approximate convergence (§4.4). We attack mid-training
    // once accuracy has climbed, so the collapse is visible.
    let attack_round = match scale {
        Scale::Fast => 7,
        Scale::Full => 10,
    };

    output::meta("experiment", "fig6_attack (model replacement, no detection)");
    output::meta("scale", format!("{scale:?}"));
    output::meta("attack_round", attack_round + 1);
    output::meta("poison", "100% labels flipped");
    output::header(&["dataset/algo", "round", "accuracy", "test_loss", "note"]);

    for &kind in kinds {
        let spec = ExperimentSpec::at(scale, kind, 16, 30);
        for algo in [Algo::FedAvg, Algo::FedCavNoDetect] {
            let label = format!("{}/{}", kind.name(), algo.name());
            let h = run_under_attack(&spec, Dist::NonIidBalanced, algo, attack_round, 1.0)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            output::series(&label, &h);
            // Recovery metric: rounds from the attack until accuracy regains
            // 90% of the pre-attack value.
            let pre =
                h.records[..attack_round].iter().map(|r| r.test_accuracy).fold(0.0f32, f32::max);
            let recover = h.records[attack_round..]
                .iter()
                .find(|r| r.test_accuracy >= 0.9 * pre)
                .map(|r| (r.round - attack_round).to_string())
                .unwrap_or_else(|| ">end".into());
            println!("## {label}\tpre_attack_acc={pre:.4}\trecovery_rounds={recover}");
        }
    }
}
