//! **EXT — client-executor scaling:** wall-clock of the same federated run
//! under the sequential executor vs scoped-thread pools of 2 and 4 workers,
//! asserting along the way that the histories are bit-identical (the
//! executor may only change *when* clients train, never *what* they
//! produce — see DESIGN.md §11).
//!
//! Run: `cargo bench -p fedcav-bench --bench executor_scaling`
//! (add `-- --full` for paper-scale parameters).

use fedcav_bench::experiment::{run_standard, Algo, Dist, ExperimentSpec, Scale};
use fedcav_data::SyntheticKind;
use fedcav_fl::{ClientExecutor, History, RoundRecord};
use std::time::Instant;

/// Records with the real wall-clock phase timings zeroed: everything that
/// is required to be identical across executors.
fn deterministic_view(history: &History) -> Vec<RoundRecord> {
    history
        .records
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.phases = Default::default();
            r
        })
        .collect()
}

fn main() {
    let scale = Scale::from_args();
    let mut spec = ExperimentSpec::at(scale, SyntheticKind::MnistLike, 5, 30);
    let executors = [
        ClientExecutor::Sequential,
        ClientExecutor::ScopedThreads(2),
        ClientExecutor::ScopedThreads(4),
    ];

    println!("# executor_scaling: {} clients, {} rounds, FedCav", spec.n_clients, spec.rounds);
    println!("executor\twall_s\tspeedup\tfinal_acc");
    let mut baseline: Option<(f64, Vec<RoundRecord>)> = None;
    for executor in executors {
        spec.executor = executor;
        let start = Instant::now();
        let history = run_standard(&spec, Dist::NonIidBalanced, Algo::FedCav).expect("run");
        let wall = start.elapsed().as_secs_f64();
        let view = deterministic_view(&history);
        let acc = view.last().map(|r| r.test_accuracy).unwrap_or(0.0);
        let speedup = match &baseline {
            None => 1.0,
            Some((seq_wall, seq_view)) => {
                assert_eq!(*seq_view, view, "{executor} diverged from the sequential history");
                seq_wall / wall.max(f64::EPSILON)
            }
        };
        println!("{executor}\t{wall:.3}\t{speedup:.2}\t{acc:.4}");
        if baseline.is_none() {
            baseline = Some((wall, view));
        }
    }
}
