//! **E7 — §6 "Overhead of FedCav":** criterion micro-benches comparing the
//! per-round cost FedCav adds (one inference pass to compute `f_i(w_t)`)
//! against the local-training cost that exists anyway, plus the server-side
//! aggregation cost of softmax-weighting vs plain averaging.
//!
//! Paper's numbers (their hardware): inference latency 0.0857 s vs training
//! 0.1620 s × E per round on MNIST — i.e. the extra inference is roughly
//! half of one epoch. The *ratio* is what we reproduce.
//!
//! Run: `cargo bench -p fedcav-bench --bench overhead`

use criterion::{criterion_group, Criterion};
use fedcav_bench::experiment::ExperimentSpec;
use fedcav_core::weights::contribution_weights;
use fedcav_data::SyntheticKind;
use fedcav_fl::aggregate::{sample_weights, weighted_sum};
use fedcav_fl::client::{local_update, LocalConfig};
use fedcav_fl::eval::evaluate;
use fedcav_fl::update::LocalUpdate;
use std::hint::black_box;

fn bench_client_side(c: &mut Criterion) {
    let spec = ExperimentSpec::fast(SyntheticKind::MnistLike, 1);
    let (train, _) = spec.data().expect("data");
    let local = train.subset(&(0..60).collect::<Vec<_>>()).expect("subset");
    let factory = spec.model_factory();
    let global = factory().flat_params();

    let mut group = c.benchmark_group("client_side");
    group.sample_size(10);
    // FedCav's extra cost: one inference pass over the local data.
    group.bench_function("inference_loss (FedCav extra)", |b| {
        b.iter(|| {
            let mut model = factory();
            model.set_flat_params(&global).unwrap();
            black_box(evaluate(&mut model, &local, 32).unwrap())
        })
    });
    // The cost that exists anyway: one local epoch of training.
    group.bench_function("one_local_epoch (baseline cost)", |b| {
        let cfg = LocalConfig { epochs: 1, batch_size: 10, lr: 0.01, prox_mu: 0.0 };
        b.iter(|| black_box(local_update(&*factory, &global, 0, &local, &cfg, 7).unwrap()))
    });
    group.finish();
}

fn bench_server_side(c: &mut Criterion) {
    // 30 participants (paper: 100 clients x q=0.3), LeNet-5-sized updates.
    let spec = ExperimentSpec::fast(SyntheticKind::MnistLike, 1);
    let factory = spec.model_factory();
    let params = factory().flat_params();
    let updates: Vec<LocalUpdate> =
        (0..30).map(|i| LocalUpdate::new(i, params.clone(), 0.1 + i as f32 * 0.05, 60)).collect();

    let mut group = c.benchmark_group("server_side");
    group.bench_function("fedavg_aggregate", |b| {
        b.iter(|| {
            let w = sample_weights(&updates).unwrap();
            black_box(weighted_sum(&updates, &w).unwrap())
        })
    });
    group.bench_function("fedcav_aggregate", |b| {
        b.iter(|| {
            let losses: Vec<f32> = updates.iter().map(|u| u.inference_loss).collect();
            let w = contribution_weights(&losses, true, 1.0);
            black_box(weighted_sum(&updates, &w).unwrap())
        })
    });
    group.finish();
}

fn report_comm_overhead() {
    // Not a timing bench: print the §6 communication accounting directly.
    use fedcav_fl::CommModel;
    let spec = ExperimentSpec::fast(SyntheticKind::MnistLike, 1);
    let n_params = spec.model_factory()().state_len();
    let m = CommModel::new(n_params);
    let participants = 30;
    println!("# comm accounting (LeNet-5, {participants} participants/round)");
    println!(
        "# fedavg_uplink_bytes\t{}\n# fedcav_uplink_bytes\t{}\n# fedcav_extra_bytes\t{} ({} per client)",
        m.uplink(participants, false),
        m.uplink(participants, true),
        m.fedcav_overhead(participants),
        m.fedcav_overhead(participants) / participants as u64,
    );
}

fn report_phase_profile() {
    // Where a round's wall time actually goes: a short traced run with the
    // kernel counters on, printed per phase (and exportable as JSONL/CSV).
    use fedcav_bench::experiment::{run_standard_traced, Algo, Dist};
    let spec = ExperimentSpec::fast(SyntheticKind::MnistLike, 2);
    let (history, events) =
        run_standard_traced(&spec, Dist::IidBalanced, Algo::FedCav).expect("traced run");
    fedcav_bench::output::phase_profile("FedCav", &history);
    for e in events.iter().filter(|e| e.name == "round.ops") {
        let fields =
            e.fields.iter().map(|(k, v)| format!("{k}={v:?}")).collect::<Vec<_>>().join("\t");
        println!("# round.ops\t{fields}");
    }
}

criterion_group!(benches, bench_client_side, bench_server_side);

fn main() {
    report_comm_overhead();
    report_phase_profile();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}
