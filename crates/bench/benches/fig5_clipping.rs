//! **E4 — Fig. 5:** FedCav vs FedCav-without-Clip over 50 rounds on each
//! dataset (non-IID imbalanced σ=600).
//!
//! Expected shape (paper): the unclipped variant oscillates — sharp
//! accuracy drops where one high-loss client grabs nearly all the softmax
//! weight — while clipped FedCav is stable. The harness also prints the
//! per-series *maximum round-to-round accuracy drop* as an oscillation
//! metric.
//!
//! Run: `cargo bench -p fedcav-bench --bench fig5_clipping [-- --full]`

use fedcav_bench::experiment::{run_standard, Algo, Dist, ExperimentSpec, Scale};
use fedcav_bench::output;
use fedcav_data::SyntheticKind;
use fedcav_fl::History;

fn max_drop(h: &History) -> f32 {
    h.records
        .windows(2)
        .map(|w| (w[0].test_accuracy - w[1].test_accuracy).max(0.0))
        .fold(0.0, f32::max)
}

fn main() {
    let scale = Scale::from_args();
    let kinds: &[SyntheticKind] = match scale {
        Scale::Fast => &[SyntheticKind::MnistLike],
        Scale::Full => {
            &[SyntheticKind::MnistLike, SyntheticKind::FmnistLike, SyntheticKind::Cifar10Like]
        }
    };

    output::meta("experiment", "fig5_clipping (clip vs no-clip)");
    output::meta("scale", format!("{scale:?}"));
    output::meta("distribution", "non-IID sigma=900");
    output::header(&["dataset/variant", "round", "accuracy", "test_loss", "note"]);

    for &kind in kinds {
        let mut spec = ExperimentSpec::at(scale, kind, 25, 50);
        // A hotter local step makes weight concentration visible as the
        // oscillation the paper's Fig. 5 shows: one dominating client's
        // drifted update swings the global model.
        if scale == Scale::Fast {
            spec.local.lr = 0.05;
        }
        let mut results = Vec::new();
        for (label, algo) in
            [("FedCav", Algo::FedCavNoDetect), ("FedCav-noClip", Algo::FedCavNoClip)]
        {
            let series_label = format!("{}/{label}", kind.name());
            let h = run_standard(&spec, Dist::NonIidSigma(900.0), algo)
                .unwrap_or_else(|e| panic!("{series_label}: {e}"));
            output::series(&series_label, &h);
            results.push((series_label, h));
        }
        for (label, h) in &results {
            output::summary(label, h, 5);
            println!("## {label}\tmax_round_drop={:.4}", max_drop(h));
        }
    }
}
