//! **Extension (beyond the paper's evaluation):** Byzantine random-update
//! adversaries (the §2 "untargeted / model downgrade" threat the paper
//! cites via Blanchard et al. but does not measure). Compares FedAvg,
//! FedCav-without-detection, and full FedCav under k compromised clients
//! submitting Gaussian-noise updates every round.
//!
//! Expected: FedAvg degrades in proportion to k/n each round; FedCav's
//! detection treats the resulting loss spikes like a replacement attack and
//! reverses, bounding the damage.
//!
//! Run: `cargo bench -p fedcav-bench --bench ext_byzantine [-- --full]`

use fedcav_attack::ByzantineRandom;
use fedcav_bench::experiment::{Algo, ExperimentSpec, Scale};
use fedcav_bench::output;
use fedcav_data::{partition, ImbalanceSpec, SyntheticKind};
use fedcav_fl::{CoordinateMedian, FedAvgM, Simulation, Strategy, TrimmedMean};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let spec = ExperimentSpec::at(scale, SyntheticKind::MnistLike, 12, 30);
    // Attack every round from round 3 on, with moderate noise.
    let attack_rounds: Vec<usize> = (3..spec.rounds).collect();

    output::meta("experiment", "ext_byzantine (random-update adversaries, extension)");
    output::meta("scale", format!("{scale:?}"));
    output::meta("attack", "1 compromised slot per round, rounds 4+, noise_std=0.5");
    output::header(&["algo", "round", "accuracy", "test_loss", "note"]);

    // The paper's strategies plus the classical robust-statistics defenses
    // (coordinate median / trimmed mean) and server momentum.
    let strategies: Vec<(&str, Box<dyn Strategy>)> = vec![
        ("FedAvg", Algo::FedAvg.strategy()),
        ("FedCav-noDetect", Algo::FedCavNoDetect.strategy()),
        ("FedCav", Algo::FedCav.strategy()),
        ("CoordMedian", Box::new(CoordinateMedian::new())),
        ("TrimmedMean(1)", Box::new(TrimmedMean::new(1))),
        ("FedAvgM(0.9)", Box::new(FedAvgM::new(0.9))),
    ];
    for (label, strategy) in strategies {
        let (train, test) = spec.data().expect("data");
        let factory = spec.model_factory();
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xB12A);
        let part = partition::noniid(&train, spec.n_clients, 2, ImbalanceSpec::Balanced, &mut rng);
        let clients = part.client_datasets(&train).expect("partition");
        let mut sim = Simulation::new(&*factory, clients, test, strategy, spec.sim_config());
        sim.set_interceptor(Box::new(ByzantineRandom::new(
            1,
            0.5,
            attack_rounds.clone(),
            spec.seed ^ 0xB12B,
        )));
        sim.run(spec.rounds).expect("simulation");
        output::series(label, sim.history());
        output::summary(label, sim.history(), 3);
        let reversed = sim.history().rejected_rounds().len();
        println!("## {label}\treversed_count={reversed}");
    }
}
