//! **E1 — Fig. 2 (and §3.2's observation):** FedAvg classification accuracy
//! over communication rounds on five data distributions: IID&balanced,
//! non-IID&balanced, and non-IID with σ ∈ {300, 600, 900}. MNIST-like data,
//! LeNet-5.
//!
//! Expected shape (paper): balanced distributions converge in a handful of
//! rounds; accuracy degrades and becomes less stable as σ grows.
//!
//! Run: `cargo bench -p fedcav-bench --bench fig2_heterogeneity [-- --full]`

use fedcav_bench::experiment::{run_standard, Algo, Dist, ExperimentSpec, Scale};
use fedcav_bench::output;
use fedcav_data::SyntheticKind;

fn main() {
    let scale = Scale::from_args();
    let spec = ExperimentSpec::at(scale, SyntheticKind::MnistLike, 20, 50);

    output::meta("experiment", "fig2_heterogeneity (FedAvg on 5 distributions)");
    output::meta("scale", format!("{scale:?}"));
    output::meta("model", "LeNet-5");
    output::meta("n_clients", spec.n_clients);
    output::meta("rounds", spec.rounds);
    output::header(&["distribution", "round", "accuracy", "test_loss", "note"]);

    let dists = [
        Dist::IidBalanced,
        Dist::NonIidBalanced,
        Dist::NonIidSigma(300.0),
        Dist::NonIidSigma(600.0),
        Dist::NonIidSigma(900.0),
    ];
    let mut summaries = Vec::new();
    for dist in dists {
        let history = run_standard(&spec, dist, Algo::FedAvg)
            .unwrap_or_else(|e| panic!("{}: {e}", dist.name()));
        output::series(&dist.name(), &history);
        summaries.push((dist.name(), history));
    }
    for (name, history) in &summaries {
        output::summary(name, history, 5);
    }
}
