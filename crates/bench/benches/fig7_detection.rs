//! **E6 — Fig. 7:** performance recovery with the §4.4 detection enabled,
//! under model-replacement attacks of different strengths (20% / 50% / 80%
//! label-poisoned malicious models). Attack at round 4; the detector should
//! fire at round 5 and reverse the global model to the cached one.
//!
//! Expected shape (paper): one-round dip at the attack, immediate reverse,
//! accuracy back at the pre-attack level the round after — versus the many
//! recovery rounds of Fig. 6.
//!
//! `--vote-fraction <f>` overrides the majority threshold (ablation,
//! DESIGN.md §6).
//!
//! Run: `cargo bench -p fedcav-bench --bench fig7_detection [-- --full]`

use fedcav_attack::{ModelReplacement, ModelReplacementConfig};
use fedcav_bench::experiment::{ExperimentSpec, Scale};
use fedcav_bench::output;
use fedcav_core::{DetectorConfig, FedCav, FedCavConfig};
use fedcav_data::poison::flip_fraction;
use fedcav_data::{partition, ImbalanceSpec, SyntheticKind};
use fedcav_fl::Simulation;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn vote_fraction_from_args() -> f32 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--vote-fraction")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.5)
}

fn main() {
    let scale = Scale::from_args();
    let vote_fraction = vote_fraction_from_args();
    // 0-based. The paper attacks "in the 4th round" of a warmed-up
    // deployment; the detection baseline (last round's max loss) is only
    // meaningful once training has settled, so we attack mid-training.
    let (attack_round, rounds) = match scale {
        Scale::Fast => (8, 12),
        Scale::Full => (10, 14),
    };
    let spec = match scale {
        Scale::Fast => ExperimentSpec::fast(SyntheticKind::MnistLike, rounds),
        Scale::Full => ExperimentSpec::full(SyntheticKind::MnistLike, rounds),
    };

    output::meta("experiment", "fig7_detection (detection + reverse)");
    output::meta("scale", format!("{scale:?}"));
    output::meta("attack_round", attack_round + 1);
    output::meta("vote_fraction", vote_fraction);
    output::header(&["poison", "round", "accuracy", "test_loss", "note"]);

    for poison in [0.2f64, 0.5, 0.8] {
        let (train, test) = spec.data().expect("data generation");
        let factory = spec.model_factory();
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xF16);
        let part = partition::noniid(&train, spec.n_clients, 2, ImbalanceSpec::Balanced, &mut rng);
        let clients = part.client_datasets(&train).expect("partition");

        let poisoned = flip_fraction(&clients[0], poison, &mut rng);
        let adversary = ModelReplacement::new(
            &*factory,
            poisoned,
            ModelReplacementConfig {
                attack_rounds: vec![attack_round],
                // FedCav's clipped weights give the attacker less than the
                // uniform 1/n share the auto-boost assumes, so a committed
                // adversary over-boosts (the paper's attacker "iteratively
                // increases" its estimate; see AdaptiveReplacement).
                boost: Some(2.0 * (spec.sample_ratio * spec.n_clients as f64).ceil() as f32),
                // Stealthy report: blend in at the attack round so the
                // figure shows the paper's dip-then-reverse sequence.
                reported_loss: 1.0,
                local: spec.local,
                seed: spec.seed ^ 0xE011,
            },
        );
        let strategy = FedCav::new(FedCavConfig {
            detection: Some(DetectorConfig { vote_fraction }),
            ..Default::default()
        });
        let mut sim =
            Simulation::new(&*factory, clients, test, Box::new(strategy), spec.sim_config());
        sim.set_interceptor(Box::new(adversary));
        sim.run(rounds).expect("simulation");

        let label = format!("{:.0}% label poisoned", poison * 100.0);
        output::series(&label, sim.history());
        let reversed = sim.history().rejected_rounds();
        println!(
            "## {label}\treversed_rounds={}",
            if reversed.is_empty() {
                "-".to_string()
            } else {
                reversed.iter().map(|r| (r + 1).to_string()).collect::<Vec<_>>().join(",")
            }
        );
    }
}
