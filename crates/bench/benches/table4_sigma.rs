//! **E2 — Table 4:** converged classification accuracy of FedAvg / FedProx /
//! FedCav at σ ∈ {300, 600, 900} on the three datasets.
//!
//! Expected shape (paper): FedCav wins or ties everywhere, with the margin
//! growing as σ grows; all methods degrade with σ.
//!
//! Fast scale runs the MNIST-like tier only (LeNet-5); `--full` adds the
//! FMNIST-like (CNN-9) and CIFAR-10-like (ResNet-18) tiers at paper scale.
//! `--ablate-temp` additionally sweeps the FedCav softmax temperature, and
//! `--ablate-hybrid` compares the size-hybrid weight mode (DESIGN.md §6).
//!
//! Run: `cargo bench -p fedcav-bench --bench table4_sigma [-- --full]`

use fedcav_bench::experiment::{run_standard, Algo, Dist, ExperimentSpec, Scale};
use fedcav_bench::output;
use fedcav_core::{FedCav, FedCavConfig, WeightMode};
use fedcav_data::SyntheticKind;
use fedcav_fl::Simulation;

fn main() {
    let scale = Scale::from_args();
    let ablate_temp = std::env::args().any(|a| a == "--ablate-temp");
    let ablate_hybrid = std::env::args().any(|a| a == "--ablate-hybrid");
    let kinds: &[SyntheticKind] = match scale {
        Scale::Fast => &[SyntheticKind::MnistLike],
        Scale::Full => {
            &[SyntheticKind::MnistLike, SyntheticKind::FmnistLike, SyntheticKind::Cifar10Like]
        }
    };
    let sigmas = [300.0f32, 600.0, 900.0];
    let algos = [Algo::FedAvg, Algo::FedProx, Algo::FedCav];

    // Table 4 reports *average* accuracy after convergence; we average over
    // independent seeds (partition + sampling randomness) per cell.
    let n_seeds: u64 = 3;
    output::meta("experiment", "table4_sigma (converged accuracy vs sigma)");
    output::meta("scale", format!("{scale:?}"));
    output::meta("seeds_per_cell", n_seeds);
    output::header(&["dataset", "sigma", "algo", "converged_acc", "convergence_round"]);

    for &kind in kinds {
        let base = ExperimentSpec::at(scale, kind, 15, 60);
        for &sigma in &sigmas {
            for algo in algos {
                let mut accs = Vec::new();
                let mut rounds = Vec::new();
                for s in 0..n_seeds {
                    let spec = ExperimentSpec { seed: base.seed + 101 * s, ..base };
                    let h = run_standard(&spec, Dist::NonIidSigma(sigma), algo)
                        .unwrap_or_else(|e| panic!("{} σ={sigma}: {e}", algo.name()));
                    accs.push(h.converged_accuracy(5).unwrap_or(f32::NAN));
                    if let Some(r) = h.convergence_round(0.99, 5) {
                        rounds.push(r + 1);
                    }
                }
                let acc = accs.iter().sum::<f32>() / accs.len() as f32;
                let round = if rounds.is_empty() {
                    "-".to_string()
                } else {
                    format!("{:.1}", rounds.iter().sum::<usize>() as f32 / rounds.len() as f32)
                };
                println!("{}\t{sigma:.0}\t{}\t{acc:.4}\t{round}", kind.name(), algo.name());
            }
        }
        if ablate_temp {
            ablation_temperature(&base);
        }
        if ablate_hybrid {
            ablation_hybrid(&base);
        }
    }
}

/// DESIGN.md §6 ablation: FedCav softmax temperature sweep at σ=600.
fn ablation_temperature(spec: &ExperimentSpec) {
    println!("# ablation: FedCav softmax temperature (sigma=600)");
    for temperature in [0.5f32, 1.0, 2.0, 4.0] {
        let acc = run_fedcav_variant(
            spec,
            FedCavConfig { temperature, detection: None, ..Default::default() },
        );
        println!("{}\tT={temperature}\tFedCav\t{acc:.4}\t-", spec.kind.name());
    }
}

/// DESIGN.md §6 ablation: weight-rule variants at σ=600 (including the
/// linear weighting the paper's §4.2.2 argues against).
fn ablation_hybrid(spec: &ExperimentSpec) {
    println!("# ablation: FedCav weight mode (sigma=600)");
    for (label, mode) in [
        ("softmax-loss", WeightMode::SoftmaxLoss),
        ("softmax-loss-x-size", WeightMode::SoftmaxLossSizeHybrid),
        ("linear-loss", WeightMode::LinearLoss),
    ] {
        let acc = run_fedcav_variant(
            spec,
            FedCavConfig { weight_mode: mode, detection: None, ..Default::default() },
        );
        println!("{}\t{label}\tFedCav\t{acc:.4}\t-", spec.kind.name());
    }
}

fn run_fedcav_variant(spec: &ExperimentSpec, config: FedCavConfig) -> f32 {
    use fedcav_data::{partition, ImbalanceSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let (train, test) = spec.data().expect("data generation");
    let factory = spec.model_factory();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xD157);
    let part =
        partition::noniid(&train, spec.n_clients, 2, ImbalanceSpec::PaperSigma(600.0), &mut rng);
    let clients = part.client_datasets(&train).expect("partition");
    let mut sim =
        Simulation::new(&*factory, clients, test, Box::new(FedCav::new(config)), spec.sim_config());
    sim.run(spec.rounds).expect("simulation");
    sim.history().converged_accuracy(5).unwrap_or(f32::NAN)
}
