//! Criterion micro-benches of the tensor kernels underlying the
//! simulation: matmul, conv2d forward/backward, softmax/weight math.
//! Used to tune the rayon parallelism threshold and to catch kernel
//! regressions; not tied to a paper figure.
//!
//! Run: `cargo bench -p fedcav-bench --bench kernels`

use criterion::{criterion_group, criterion_main, Criterion};
use fedcav_core::weights::contribution_weights;
use fedcav_tensor::conv::{conv2d_backward, conv2d_forward, Conv2dParams};
use fedcav_tensor::{init, numerics, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = init::uniform(&mut rng, &[128, 256], -1.0, 1.0);
    let b = init::uniform(&mut rng, &[256, 128], -1.0, 1.0);
    c.bench_function("matmul_128x256x128", |bch| bch.iter(|| black_box(a.matmul(&b).unwrap())));
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let input = init::uniform(&mut rng, &[10, 6, 12, 12], -1.0, 1.0);
    let weight = init::uniform(&mut rng, &[16, 6, 5, 5], -0.5, 0.5);
    let bias = Tensor::zeros(&[16]);
    let params = Conv2dParams { stride: 1, padding: 0 };
    c.bench_function("conv2d_fwd_lenet_c2_b10", |bch| {
        bch.iter(|| black_box(conv2d_forward(&input, &weight, &bias, params).unwrap()))
    });
    let out = conv2d_forward(&input, &weight, &bias, params).unwrap();
    c.bench_function("conv2d_bwd_lenet_c2_b10", |bch| {
        bch.iter(|| black_box(conv2d_backward(&input, &weight, &out, params).unwrap()))
    });
}

fn bench_weight_math(c: &mut Criterion) {
    let losses: Vec<f32> = (0..100).map(|i| 0.1 + (i as f32 * 0.37).sin().abs()).collect();
    c.bench_function("softmax_100", |bch| bch.iter(|| black_box(numerics::softmax(&losses))));
    c.bench_function("contribution_weights_100", |bch| {
        bch.iter(|| black_box(contribution_weights(&losses, true, 1.0)))
    });
    c.bench_function("logsumexp_100", |bch| bch.iter(|| black_box(numerics::logsumexp(&losses))));
}

criterion_group!(benches, bench_matmul, bench_conv, bench_weight_math);
criterion_main!(benches);
