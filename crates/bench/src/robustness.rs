//! The adversarial benchmark matrix: every aggregation strategy in the
//! repo × every attack in `fedcav-attack` × data distribution × fault
//! profile, with machine-readable output (`BENCH_robustness.json`).
//!
//! Each cell runs a full federated simulation and records final accuracy,
//! converged accuracy, rounds-to-target, reversal/degradation counts and
//! the number of rounds whose defense reported a tolerance breach
//! ([`fedcav_fl::ToleranceBreach`]). The *robustness delta* of a cell is
//! its converged accuracy minus the converged accuracy of the same
//! strategy/distribution/fault cell under no attack — the accuracy the
//! attack actually cost, separated from what the strategy loses on clean
//! data.
//!
//! The graceful-degradation contract is enforced here, not just tested:
//! every cell must complete without an error. A defense pushed past its
//! tolerance bound (e.g. Krum with `n < 2f+3`, a cohort that is majority
//! non-finite) must degrade — fall back, clamp, hold the model — and
//! report the breach through telemetry rather than fail the run.

use crate::experiment::{Dist, ExperimentSpec};
use fedcav_attack::{
    ByzantineRandom, DishonestSize, LossInflation, ModelReplacement, ModelReplacementConfig,
};
use fedcav_core::{FedCav, FedCavConfig, WeightMode};
use fedcav_data::poison::flip_all_labels;
use fedcav_data::Dataset;
use fedcav_fl::{
    CoordinateMedian, FedAvg, FedAvgM, FedProx, History, Krum, LearnedWeights, NormClippedMomentum,
    RandomFaults, Simulation, SizeGuard, Strategy, TrimmedMean,
};
use fedcav_tensor::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every aggregation strategy in the zoo, by matrix row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobustAlgo {
    /// Size-weighted mean (no defense; the vulnerability baseline).
    FedAvg,
    /// FedAvg with server momentum.
    FedAvgM,
    /// FedProx (μ = 0.01).
    FedProx,
    /// FedCav, paper configuration (clip + detection).
    FedCav,
    /// FedCav with the dishonest-size-robust capped hybrid weights.
    FedCavCappedSize,
    /// Coordinate-wise median.
    CoordMedian,
    /// β-trimmed mean (saturating: clamps β rather than erroring).
    TrimmedMean,
    /// Krum (single selection).
    Krum,
    /// Multi-Krum (average of the m best-scored updates).
    MultiKrum,
    /// Norm clipping + server momentum.
    NormClip,
    /// Server-side learnable aggregation weights.
    Learned,
    /// Clipped, cross-checked size-proportional weighting.
    SizeGuard,
}

/// All matrix rows, vulnerability baselines first.
pub const ALL_ALGOS: [RobustAlgo; 12] = [
    RobustAlgo::FedAvg,
    RobustAlgo::FedAvgM,
    RobustAlgo::FedProx,
    RobustAlgo::FedCav,
    RobustAlgo::FedCavCappedSize,
    RobustAlgo::CoordMedian,
    RobustAlgo::TrimmedMean,
    RobustAlgo::Krum,
    RobustAlgo::MultiKrum,
    RobustAlgo::NormClip,
    RobustAlgo::Learned,
    RobustAlgo::SizeGuard,
];

impl RobustAlgo {
    /// Display name (matrix row label).
    pub fn name(self) -> &'static str {
        match self {
            RobustAlgo::FedAvg => "FedAvg",
            RobustAlgo::FedAvgM => "FedAvgM",
            RobustAlgo::FedProx => "FedProx",
            RobustAlgo::FedCav => "FedCav",
            RobustAlgo::FedCavCappedSize => "FedCav-cappedSize",
            RobustAlgo::CoordMedian => "CoordMedian",
            RobustAlgo::TrimmedMean => "TrimmedMean",
            RobustAlgo::Krum => "Krum",
            RobustAlgo::MultiKrum => "MultiKrum",
            RobustAlgo::NormClip => "NormClip",
            RobustAlgo::Learned => "LearnedWeights",
            RobustAlgo::SizeGuard => "SizeGuard",
        }
    }

    /// Build the strategy. `spec` supplies the model factory and `val` the
    /// server-side validation split for [`RobustAlgo::Learned`]. Parameters
    /// are sized for the matrix cohorts (per-round participants ≈
    /// `n_clients × sample_ratio`): the f = 1 assumed by Krum and the β = 1
    /// trim tolerate the single-adversary attacks used here.
    pub fn strategy(self, spec: &ExperimentSpec, val: &Dataset) -> Box<dyn Strategy> {
        match self {
            RobustAlgo::FedAvg => Box::new(FedAvg::new()),
            RobustAlgo::FedAvgM => Box::new(FedAvgM::new(0.9)),
            RobustAlgo::FedProx => Box::new(FedProx::new(0.01)),
            RobustAlgo::FedCav => Box::new(FedCav::new(FedCavConfig::default())),
            RobustAlgo::FedCavCappedSize => Box::new(FedCav::new(FedCavConfig {
                weight_mode: WeightMode::SoftmaxLossCappedSize,
                ..Default::default()
            })),
            RobustAlgo::CoordMedian => Box::new(CoordinateMedian::new()),
            RobustAlgo::TrimmedMean => Box::new(TrimmedMean::saturating(1)),
            RobustAlgo::Krum => Box::new(Krum::new(1)),
            RobustAlgo::MultiKrum => Box::new(Krum::multi(1, 3)),
            RobustAlgo::NormClip => Box::new(NormClippedMomentum::new(1.0, 0.9)),
            RobustAlgo::Learned => {
                Box::new(LearnedWeights::new(val.clone(), spec.model_factory(), 0.5, 64))
            }
            RobustAlgo::SizeGuard => Box::new(SizeGuard::new(3.0)),
        }
    }
}

/// The attack columns of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// Clean run — the baseline every robustness delta is computed against.
    None,
    /// Model replacement (Eq. 10–11): boosted label-flipped model with an
    /// inflated reported loss, fired at round 1.
    Replacement,
    /// Honest parameters, 20×-inflated reported inference loss.
    Inflation,
    /// Random-update Byzantine client (noise std 3).
    Byzantine,
    /// Honest parameters and loss, 1000×-inflated reported sample count.
    DishonestSize,
}

/// All attack columns, clean first (the delta baseline must run first).
pub const ALL_ATTACKS: [Attack; 5] = [
    Attack::None,
    Attack::Replacement,
    Attack::Inflation,
    Attack::Byzantine,
    Attack::DishonestSize,
];

impl Attack {
    /// Display name (matrix column label).
    pub fn name(self) -> &'static str {
        match self {
            Attack::None => "none",
            Attack::Replacement => "model-replacement",
            Attack::Inflation => "loss-inflation",
            Attack::Byzantine => "byzantine-random",
            Attack::DishonestSize => "dishonest-size",
        }
    }
}

/// Client fault environment of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// No injected faults.
    Clean,
    /// 10% crash + 5% NaN/Inf parameter corruption per client-round.
    Faulty,
}

impl FaultProfile {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultProfile::Clean => "clean",
            FaultProfile::Faulty => "faulty",
        }
    }
}

/// One completed matrix cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Strategy under test.
    pub algo: &'static str,
    /// Attack applied.
    pub attack: &'static str,
    /// Data distribution.
    pub dist: String,
    /// Fault profile.
    pub faults: &'static str,
    /// Accuracy after the final round.
    pub final_accuracy: f32,
    /// Mean accuracy of the last 3 rounds.
    pub converged_accuracy: f32,
    /// First round reaching the target accuracy (1-based; `None` = never).
    pub rounds_to_target: Option<usize>,
    /// Rounds the strategy rejected/reversed (§4.4 detection).
    pub rejected_rounds: usize,
    /// Rounds the fault policy marked degraded.
    pub degraded_rounds: usize,
    /// Rounds whose defense reported a tolerance breach.
    pub breached_rounds: usize,
    /// `converged_accuracy − (same cell under Attack::None)`; 0 for the
    /// clean column itself.
    pub robustness_delta: f32,
}

/// The full matrix report.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Accuracy threshold used for `rounds_to_target`.
    pub target_accuracy: f32,
    /// Rounds per cell.
    pub rounds: usize,
    /// Clients per cell.
    pub n_clients: usize,
    /// All completed cells.
    pub cells: Vec<Cell>,
}

impl MatrixReport {
    /// Hand-rolled JSON (the repo has no serde): one object per cell.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"target_accuracy\": {:.2},\n  \"rounds\": {},\n  \"n_clients\": {},\n",
            self.target_accuracy, self.rounds, self.n_clients
        ));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let rtt = match c.rounds_to_target {
                Some(r) => r.to_string(),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"algo\": \"{}\", \"attack\": \"{}\", \"dist\": \"{}\", \
                 \"faults\": \"{}\", \"final_accuracy\": {:.4}, \
                 \"converged_accuracy\": {:.4}, \"rounds_to_target\": {}, \
                 \"rejected_rounds\": {}, \"degraded_rounds\": {}, \
                 \"breached_rounds\": {}, \"robustness_delta\": {:.4}}}{}\n",
                c.algo,
                c.attack,
                c.dist,
                c.faults,
                c.final_accuracy,
                c.converged_accuracy,
                rtt,
                c.rejected_rounds,
                c.degraded_rounds,
                c.breached_rounds,
                c.robustness_delta,
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Cells whose defense reported at least one tolerance breach.
    pub fn breached_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.breached_rounds > 0).count()
    }
}

/// Run one matrix cell: `algo` under `attack` on `dist`-partitioned data
/// with `faults` injected. Never errors by contract — an `Err` here is a
/// graceful-degradation violation, and the matrix harness treats it as
/// fatal.
pub fn run_cell(
    spec: &ExperimentSpec,
    algo: RobustAlgo,
    attack: Attack,
    dist: Dist,
    faults: FaultProfile,
) -> Result<History> {
    let (train, test) = spec.data()?;
    let factory = spec.model_factory();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x0b5e55);
    let part = dist.partition(&train, spec.n_clients, &mut rng);
    let clients = part.client_datasets(&train)?;

    // The Learned strategy validates on the server's test split — in this
    // simulation the server-side holdout it would hold in deployment.
    let strategy = algo.strategy(spec, &test);
    let mut sim = Simulation::new(&*factory, clients.clone(), test, strategy, spec.sim_config());
    sim.set_executor(spec.executor);

    match attack {
        Attack::None => {}
        Attack::Replacement => {
            let poisoned = flip_all_labels(&clients[0]);
            sim.set_interceptor(Box::new(ModelReplacement::new(
                &*factory,
                poisoned,
                ModelReplacementConfig {
                    attack_rounds: vec![1],
                    boost: None,
                    reported_loss: 5.0,
                    local: spec.local,
                    seed: spec.seed ^ 0xE011,
                },
            )));
        }
        Attack::Inflation => {
            sim.set_interceptor(Box::new(LossInflation::scaling(0, 20.0)));
        }
        Attack::Byzantine => {
            sim.set_interceptor(Box::new(ByzantineRandom::new(
                1,
                3.0,
                Vec::new(),
                spec.seed ^ 0xB12A,
            )));
        }
        Attack::DishonestSize => {
            sim.set_interceptor(Box::new(DishonestSize::scaling(0, 1000)));
        }
    }

    if faults == FaultProfile::Faulty {
        sim.set_fault_model(Box::new(RandomFaults {
            crash_rate: 0.10,
            corrupt_param_rate: 0.05,
            ..Default::default()
        }));
    }

    sim.run(spec.rounds)?;
    Ok(sim.history().clone())
}

/// Run the matrix over the given axes and compute per-cell robustness
/// deltas against each `(algo, dist, faults)` clean baseline. `progress`
/// is called once per completed cell (label, converged accuracy).
pub fn run_matrix(
    spec: &ExperimentSpec,
    algos: &[RobustAlgo],
    attacks: &[Attack],
    dists: &[Dist],
    faults: &[FaultProfile],
    target_accuracy: f32,
    mut progress: impl FnMut(&str, f32),
) -> Result<MatrixReport> {
    let mut cells = Vec::new();
    for &dist in dists {
        for &fp in faults {
            for &algo in algos {
                let mut clean_acc = None;
                for &attack in attacks {
                    let h = run_cell(spec, algo, attack, dist, fp)?;
                    let conv = h.converged_accuracy(3).unwrap_or(0.0);
                    if attack == Attack::None {
                        clean_acc = Some(conv);
                    }
                    let label =
                        format!("{}/{}/{}/{}", algo.name(), attack.name(), dist.name(), fp.name());
                    progress(&label, conv);
                    cells.push(Cell {
                        algo: algo.name(),
                        attack: attack.name(),
                        dist: dist.name(),
                        faults: fp.name(),
                        final_accuracy: h.final_accuracy().unwrap_or(0.0),
                        converged_accuracy: conv,
                        rounds_to_target: h.rounds_to_accuracy(target_accuracy).map(|r| r + 1),
                        rejected_rounds: h.rejected_rounds().len(),
                        degraded_rounds: h.degraded_rounds().len(),
                        breached_rounds: h.breached_rounds().len(),
                        robustness_delta: clean_acc.map(|c| conv - c).unwrap_or(0.0),
                    });
                }
            }
        }
    }
    Ok(MatrixReport { target_accuracy, rounds: spec.rounds, n_clients: spec.n_clients, cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcav_data::SyntheticKind;
    use fedcav_fl::{ClientExecutor, LocalConfig};

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec {
            kind: SyntheticKind::MnistLike,
            n_clients: 5,
            train_per_class: 4,
            test_per_class: 2,
            rounds: 2,
            sample_ratio: 0.8,
            local: LocalConfig { epochs: 1, batch_size: 8, lr: 0.05, prox_mu: 0.0 },
            seed: 11,
            noise_override: None,
            executor: ClientExecutor::Sequential,
            backend: fedcav_tensor::BackendKind::CpuBlocked,
            codec: fedcav_fl::CodecSpec::Identity,
        }
    }

    #[test]
    fn every_defense_completes_every_attack_cell() {
        // The graceful-degradation contract, exhaustively: tiny cohorts
        // push Krum (n < 2f+3) and the trimmed mean past their envelopes,
        // and every attack fires — nothing may error.
        let spec = tiny_spec();
        for algo in ALL_ALGOS {
            for attack in ALL_ATTACKS {
                let h = run_cell(&spec, algo, attack, Dist::IidBalanced, FaultProfile::Clean)
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} under {} must degrade, not fail: {e}",
                            algo.name(),
                            attack.name()
                        )
                    });
                assert_eq!(h.len(), spec.rounds);
            }
        }
    }

    #[test]
    fn matrix_deltas_are_zero_on_the_clean_column() {
        let spec = tiny_spec();
        let report = run_matrix(
            &spec,
            &[RobustAlgo::FedAvg, RobustAlgo::CoordMedian],
            &[Attack::None, Attack::Byzantine],
            &[Dist::IidBalanced],
            &[FaultProfile::Clean],
            0.99,
            |_, _| {},
        )
        .unwrap();
        assert_eq!(report.cells.len(), 4);
        for c in report.cells.iter().filter(|c| c.attack == "none") {
            assert_eq!(c.robustness_delta, 0.0, "{}", c.algo);
        }
    }

    #[test]
    fn json_shape_is_parseable_by_line() {
        let report = MatrixReport {
            target_accuracy: 0.5,
            rounds: 2,
            n_clients: 5,
            cells: vec![Cell {
                algo: "FedAvg",
                attack: "none",
                dist: "IID&balanced".into(),
                faults: "clean",
                final_accuracy: 0.5,
                converged_accuracy: 0.5,
                rounds_to_target: None,
                rejected_rounds: 0,
                degraded_rounds: 0,
                breached_rounds: 0,
                robustness_delta: 0.0,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"rounds_to_target\": null"));
        assert!(json.contains("\"algo\": \"FedAvg\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
