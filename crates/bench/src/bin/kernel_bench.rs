//! `kernel_bench` — measure the tensor kernels under every backend
//! (blocked, reference, f16) and write the `BENCH_kernels.json`
//! trajectory file.
//!
//! Usage: `cargo run -p fedcav-bench --release --bin kernel_bench --
//! [--tiny] [--out PATH]`
//!
//! * `--tiny` — smoke-job shapes (milliseconds, used by CI); default is
//!   the full shape set including the 256×256×256 acceptance shape.
//! * `--out PATH` — where to write the JSON (default
//!   `BENCH_kernels.json` in the current directory).
//!
//! Stdout gets a human-readable TSV summary of the same numbers; the JSON
//! file is the machine-readable artifact EXPERIMENTS.md reads from.

use fedcav_bench::kernelbench;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let reps = if tiny { 3 } else { 7 };

    let report = kernelbench::run_suite(tiny, reps);

    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    let _ = writeln!(w, "# kernel_bench: tiny={tiny} reps={reps}");
    let _ = writeln!(w, "kernel\tshape\tbackend\tns_per_op\tgflops\tspeedup");
    for k in &report.kernels {
        let speedup = if k.backend == "blocked" {
            report
                .speedup(k.kernel, &k.shape)
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "-".to_string())
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            w,
            "{}\t{}\t{}\t{:.0}\t{:.3}\t{}",
            k.kernel, k.shape, k.backend, k.ns_per_op, k.gflops, speedup
        );
    }
    for e in &report.e2e {
        let _ = writeln!(
            w,
            "e2e_round\t{}_rounds\t{}\t{:.0}\t-\t-",
            e.rounds,
            e.backend,
            e.mean_round_wall_secs * 1e9
        );
    }

    if let Err(err) = std::fs::write(&out_path, report.to_json()) {
        let _ = writeln!(std::io::stderr(), "failed to write {out_path}: {err}");
        std::process::exit(1);
    }
    let _ = writeln!(w, "# wrote {out_path}");
}
