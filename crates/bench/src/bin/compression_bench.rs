//! `compression_bench` — run the wire-codec grid over the standard FedCav
//! experiment and write the `BENCH_compression.json` Pareto file.
//!
//! Usage: `cargo run -p fedcav-bench --release --bin compression_bench --
//! [--tiny] [--smoke] [--rounds N] [--out PATH]`
//!
//! * `--tiny` — unit-test-sized deployment (milliseconds); without it the
//!   sweep runs the standard fast preset (LeNet-5 on MNIST-like data, 30
//!   clients at q=0.3). `--smoke` is accepted as an explicit alias for
//!   that default (the CI job spells it out).
//! * `--rounds N` — communication rounds per grid point (default 10 —
//!   enough for the sparsified trajectory to converge back onto the
//!   baseline's accuracy; the deterministic byte columns don't care).
//! * `--out PATH` — where to write the JSON (default
//!   `BENCH_compression.json` in the current directory).
//!
//! Stdout gets a human-readable TSV of the same numbers; the JSON file is
//! the machine-readable artifact EXPERIMENTS.md E11 reads from. The
//! acceptance readout: `int8+delta` and `topk:0.1+delta` must reach ≥3×
//! `uplink_ratio` at ≥-1.0 `accuracy_delta_pts`.

use fedcav_bench::compression;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let rounds = args
        .iter()
        .position(|a| a == "--rounds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_compression.json".to_string());

    let spec = compression::sweep_spec(tiny, rounds);
    let report = match compression::run_suite(&spec) {
        Ok(r) => r,
        Err(err) => {
            let _ = writeln!(std::io::stderr(), "compression_bench failed: {err}");
            std::process::exit(1);
        }
    };

    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    let _ = writeln!(w, "# compression_bench: tiny={tiny} rounds={}", spec.rounds);
    let _ = writeln!(w, "scheme\tfinal_accuracy\taccuracy_delta_pts\ttotal_up_bytes\tuplink_ratio");
    for r in &report.rows {
        let _ = writeln!(
            w,
            "{}\t{:.4}\t{:+.2}\t{}\t{:.3}",
            r.scheme, r.final_accuracy, r.accuracy_delta_pts, r.total_up_bytes, r.uplink_ratio
        );
    }
    for scheme in ["int8+delta", "topk:0.1+delta"] {
        let verdict = if report.meets(scheme, 3.0, 1.0) { "PASS" } else { "FAIL" };
        let _ = writeln!(w, "# acceptance {scheme}: >=3x uplink at <=1pt loss: {verdict}");
    }

    if let Err(err) = std::fs::write(&out_path, report.to_json()) {
        let _ = writeln!(std::io::stderr(), "failed to write {out_path}: {err}");
        std::process::exit(1);
    }
    let _ = writeln!(w, "# wrote {out_path}");
}
