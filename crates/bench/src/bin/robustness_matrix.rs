//! The adversarial benchmark matrix harness (DESIGN.md §13, EXPERIMENTS.md
//! E9): every aggregation strategy × every attack × data distribution ×
//! fault profile, written as `BENCH_robustness.json`.
//!
//! ```text
//! robustness_matrix [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` runs a reduced grid (CI wall-clock); the default grid covers
//! all 12 strategies × 5 attacks × 3 distributions × 2 fault profiles.
//! Exit code is non-zero only on a graceful-degradation violation (a cell
//! returning an error), never on accuracy.

use fedcav_bench::experiment::{Dist, ExperimentSpec};
use fedcav_bench::robustness::{
    run_matrix, Attack, FaultProfile, RobustAlgo, ALL_ALGOS, ALL_ATTACKS,
};
use fedcav_data::SyntheticKind;
use fedcav_fl::{ClientExecutor, LocalConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_robustness.json")
        .to_string();

    let spec = ExperimentSpec {
        kind: SyntheticKind::MnistLike,
        n_clients: 10,
        train_per_class: if smoke { 8 } else { 20 },
        test_per_class: if smoke { 4 } else { 10 },
        rounds: if smoke { 3 } else { 6 },
        sample_ratio: 0.5,
        local: LocalConfig { epochs: 2, batch_size: 10, lr: 0.05, prox_mu: 0.0 },
        seed: 42,
        noise_override: Some(0.45),
        executor: ClientExecutor::from_env(),
        backend: fedcav_tensor::backend_kind(),
        codec: fedcav_fl::CodecSpec::Identity,
    };

    let algos: Vec<RobustAlgo> = if smoke {
        vec![RobustAlgo::FedAvg, RobustAlgo::FedCav, RobustAlgo::CoordMedian, RobustAlgo::Krum]
    } else {
        ALL_ALGOS.to_vec()
    };
    let attacks: Vec<Attack> = if smoke {
        vec![Attack::None, Attack::Byzantine, Attack::DishonestSize]
    } else {
        ALL_ATTACKS.to_vec()
    };
    let dists: Vec<Dist> = if smoke {
        vec![Dist::IidBalanced]
    } else {
        vec![Dist::IidBalanced, Dist::NonIidBalanced, Dist::NonIidSigma(300.0)]
    };
    let faults: Vec<FaultProfile> = if smoke {
        vec![FaultProfile::Clean]
    } else {
        vec![FaultProfile::Clean, FaultProfile::Faulty]
    };

    let total = algos.len() * attacks.len() * dists.len() * faults.len();
    eprintln!(
        "robustness matrix: {} strategies x {} attacks x {} dists x {} fault profiles = {} cells",
        algos.len(),
        attacks.len(),
        dists.len(),
        faults.len(),
        total
    );

    let mut done = 0usize;
    let report = match run_matrix(&spec, &algos, &attacks, &dists, &faults, 0.5, |label, acc| {
        done += 1;
        eprintln!("  [{done}/{total}] {label}: converged_acc={acc:.4}");
    }) {
        Ok(r) => r,
        Err(e) => {
            // By the graceful-degradation contract no cell may error; if
            // one does, that is the finding.
            eprintln!("GRACEFUL-DEGRADATION VIOLATION: {e}");
            std::process::exit(1);
        }
    };

    let breached = report.breached_cells();
    eprintln!(
        "done: {} cells, {} with tolerance breaches reported via telemetry",
        report.cells.len(),
        breached
    );
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
