//! Calibration probe for the fresh-class experiment: sweeps local learning
//! rate and sampling ratio at fast scale and prints FedCav-vs-FedAvg
//! convergence, to pick fast-scale defaults where the paper's dynamics are
//! visible. Not part of the figure reproduction itself.

use fedcav_bench::experiment::{run_fresh_class, Algo, Dist, ExperimentSpec};
use fedcav_data::SyntheticKind;
use fedcav_fl::LocalConfig;

fn main() {
    let alpha = 0.3;
    println!("lr\tq\talgo\tr1\tr3\tr5\tconverged");
    for &lr in &[0.015f32, 0.03] {
        for &q in &[0.3f64, 0.5] {
            for algo in [Algo::FedCav, Algo::FedAvg] {
                let mut spec = ExperimentSpec::fast(SyntheticKind::MnistLike, 12);
                spec.local = LocalConfig { epochs: 3, batch_size: 10, lr, prox_mu: 0.0 };
                spec.sample_ratio = q;
                let out =
                    run_fresh_class(&spec, alpha, Dist::NonIidBalanced, algo, 3).expect("run");
                let acc = out.history.accuracies();
                println!(
                    "{lr}\t{q}\t{}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
                    algo.name(),
                    acc[0],
                    acc[2],
                    acc[4],
                    out.history.converged_accuracy(3).unwrap()
                );
            }
        }
    }
}
