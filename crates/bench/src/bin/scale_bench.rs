//! `scale_bench` — run one streaming sharded round at increasing
//! deployment sizes and write the `BENCH_scale.json` trajectory file.
//!
//! Usage: `cargo run -p fedcav-bench --release --bin scale_bench --
//! [--tiny] [--smoke] [--out PATH]`
//!
//! * `--tiny` — unit-test-sized deployments (milliseconds); without it the
//!   suite runs the smoke set, topping out at the acceptance deployment of
//!   `n = 1_000_000` clients at `q = 0.3%`. `--smoke` is accepted as an
//!   explicit alias for that default (the CI job spells it out).
//! * `--out PATH` — where to write the JSON (default `BENCH_scale.json`
//!   in the current directory).
//!
//! Stdout gets a human-readable TSV summary of the same numbers; the JSON
//! file is the machine-readable artifact EXPERIMENTS.md reads from. The
//! interesting column is `peak_rss_kb`: it must stay flat as `clients`
//! grows 100× (see `fedcav_bench::scalebench` module docs).

use fedcav_bench::scalebench;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_scale.json".to_string());

    let report = match scalebench::run_suite(tiny) {
        Ok(r) => r,
        Err(err) => {
            let _ = writeln!(std::io::stderr(), "scale_bench failed: {err}");
            std::process::exit(1);
        }
    };

    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    let _ = writeln!(w, "# scale_bench: tiny={tiny}");
    let _ = writeln!(w, "clients\tsample_ratio\tcohort\tshard_size\tround_wall_secs\tpeak_rss_kb");
    for r in &report.rows {
        let _ = writeln!(
            w,
            "{}\t{:.4}\t{}\t{}\t{:.3}\t{}",
            r.clients, r.sample_ratio, r.cohort, r.shard_size, r.round_wall_secs, r.peak_rss_kb
        );
    }
    if let Some(growth) = report.rss_growth() {
        let _ = writeln!(w, "# peak-RSS growth smallest->largest deployment: {growth:.3}x");
    }

    if let Err(err) = std::fs::write(&out_path, report.to_json()) {
        let _ = writeln!(std::io::stderr(), "failed to write {out_path}: {err}");
        std::process::exit(1);
    }
    let _ = writeln!(w, "# wrote {out_path}");
}
