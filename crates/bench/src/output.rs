//! TSV output helpers shared by all figure harnesses.
//!
//! Every harness prints:
//! 1. a header block (`# key<TAB>value`) describing the configuration, and
//! 2. one TSV table whose rows are the same series the paper's figure or
//!    table reports.

use fedcav_fl::History;

/// Print a `# key\tvalue` configuration line.
pub fn meta(key: &str, value: impl std::fmt::Display) {
    println!("# {key}\t{value}");
}

/// Print a TSV header row.
pub fn header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Print one accuracy-per-round series as rows `label, round, accuracy`.
pub fn series(label: &str, history: &History) {
    for r in &history.records {
        println!(
            "{label}\t{}\t{:.4}\t{:.4}\t{}",
            r.round + 1,
            r.test_accuracy,
            r.test_loss,
            if r.rejected { "REVERSED" } else { "-" }
        );
    }
}

/// Print the per-round phase profile (one line per round, ms-scale) and the
/// accumulated totals — the human-readable view of the trace subsystem.
pub fn phase_profile(label: &str, history: &History) {
    for r in &history.records {
        println!("## {label}\tround {}\t{}", r.round + 1, r.phases.summary());
    }
    let total = history.total_phase_timings();
    println!(
        "## {label}\ttotal\t{} (mean round {:.1} ms, dominant phase: {})",
        total.summary(),
        history.mean_round_wall_secs().unwrap_or(0.0) * 1e3,
        total.dominant().0
    );
}

/// Format a convergence summary for a history: converged accuracy (mean of
/// the last `tail` rounds) and the 99%-of-plateau convergence round.
pub fn summary(label: &str, history: &History, tail: usize) {
    let acc = history.converged_accuracy(tail).unwrap_or(f32::NAN);
    let round = history
        .convergence_round(0.99, tail)
        .map(|r| (r + 1).to_string())
        .unwrap_or_else(|| "-".to_string());
    println!("## {label}\tconverged_acc={acc:.4}\tconvergence_round={round}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcav_fl::RoundRecord;

    #[test]
    fn helpers_do_not_panic() {
        meta("scale", "fast");
        header(&["algo", "round", "acc", "loss", "note"]);
        let mut h = History::new();
        h.records.push(RoundRecord {
            round: 0,
            test_accuracy: 0.5,
            test_loss: 1.2,
            mean_inference_loss: 1.0,
            max_inference_loss: 2.0,
            participants: 3,
            rejected: true,
            reject_reason: Some("vote".into()),
            bytes_down: 100,
            bytes_up: 104,
            round_duration: 1.5,
            sim_time: 1.5,
            faults: fedcav_fl::FaultTelemetry::default(),
            phases: fedcav_fl::PhaseTimings::default(),
        });
        series("FedCav", &h);
        summary("FedCav", &h, 3);
        phase_profile("FedCav", &h);
    }
}
