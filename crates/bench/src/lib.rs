#![warn(missing_docs)]
//! # fedcav-bench
//!
//! Shared experiment machinery for the harnesses that regenerate every
//! table and figure of the paper (see DESIGN.md §4 for the index):
//!
//! * [`experiment`] — dataset/model/deployment specs with `fast` (CI
//!   wall-clock) and `full` (paper-scale) presets, plus runners for the
//!   standard σ-imbalance experiments and the fresh-class (α) dynamics.
//!   All standard runners are wrappers over
//!   [`experiment::run_standard_with`] ([`experiment::run_standard_traced`]
//!   adds a structured trace + kernel FLOP counters for profiling), and
//!   every spec carries a `ClientExecutor` so the same experiment can run
//!   sequentially or on scoped threads with bit-identical results,
//! * [`kernelbench`] — timed GFLOP/s / ns-per-op measurements of the
//!   tensor kernels (blocked vs reference) and the end-to-end round
//!   wall-clock, plus the hand-rolled `BENCH_kernels.json` serialisation
//!   used by the `kernel_bench` binary and the `kernel_scaling` bench,
//! * [`robustness`] — the adversarial benchmark matrix (every aggregation
//!   strategy × every attack × distribution × fault profile) behind the
//!   `robustness_matrix` binary and `BENCH_robustness.json`,
//! * [`compression`] — the wire-codec Pareto sweep (uplink bytes vs final
//!   accuracy across identity/delta/int8/f16/top-k transports, DESIGN.md
//!   §17) behind the `compression_bench` binary and
//!   `BENCH_compression.json`,
//! * [`scalebench`] — the streaming sharded driver at increasing
//!   deployment sizes (up to `n = 1_000_000` at `q = 0.3%`), recording
//!   round wall-clock and peak RSS behind the `scale_bench` binary and
//!   `BENCH_scale.json`,
//! * [`output`] — TSV series printing shared by all harnesses, plus the
//!   human-readable per-round phase profile.
//!
//! Each bench target under `benches/` is a `harness = false` binary: run
//! `cargo bench -p fedcav-bench --bench fig2_heterogeneity` (add
//! `-- --full` for paper-scale parameters).

pub mod compression;
pub mod experiment;
pub mod kernelbench;
pub mod output;
pub mod robustness;
pub mod scalebench;

pub use compression::{CompressionReport, CompressionRow};
pub use experiment::{Algo, Dist, ExperimentSpec, Scale};
pub use robustness::{Attack, FaultProfile, MatrixReport, RobustAlgo};
pub use scalebench::{ScaleMeasurement, ScaleReport};
