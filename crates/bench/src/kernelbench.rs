//! Kernel benchmark machinery: measured GFLOP/s and ns/op for the tensor
//! hot paths (matmul, conv forward/backward) under every registered
//! backend (`blocked`, `reference`, `f16`), plus end-to-end mean round
//! wall-clock per backend, serialised to the `BENCH_kernels.json`
//! trajectory file.
//!
//! The JSON is hand-rolled (no serde in the workspace): flat records, no
//! escaping needed because every string is a kernel/backend/shape token.
//! Schema: `{"schema": "...", "kernels": [...], "e2e": [...]}` — see
//! [`KernelReport::to_json`].
//!
//! Measurement style: best-of-`reps` after one warm-up run. Best (not
//! mean) because the quantity of interest is the kernel's cost, and every
//! source of noise on a quiet machine is additive.
//!
//! Per-backend kernels are timed through the static [`TensorOps`] methods
//! of each backend type — no process-global state is touched, so the
//! rows measure exactly what a model generic over that backend would run.
//! Only the end-to-end figure goes through the process-global dispatch
//! (via [`ExperimentSpec::backend`]), because the round loop does.

use crate::experiment::{run_standard, Algo, Dist, ExperimentSpec};
use fedcav_data::SyntheticKind;
use fedcav_fl::{ClientExecutor, LocalConfig};
use fedcav_tensor::backend::{Backend, CpuBlocked, F16Storage, Reference};
use fedcav_tensor::conv::{conv2d_forward, Conv2dParams};
use fedcav_tensor::im2col::Im2colScratch;
use fedcav_tensor::matmul::Epilogue;
use fedcav_tensor::{backend_kind, force_backend_kind, init, BackendKind, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// The stable JSON token for a backend (matches `FEDCAV_BACKEND`
/// spellings and each backend's `NAME`).
pub fn backend_token(kind: BackendKind) -> &'static str {
    match kind {
        BackendKind::CpuBlocked => CpuBlocked::NAME,
        BackendKind::Reference => Reference::NAME,
        BackendKind::F16Storage => F16Storage::NAME,
    }
}

/// One timed kernel measurement.
#[derive(Debug, Clone)]
pub struct KernelMeasurement {
    /// Which kernel: `matmul`, `conv_fwd` or `conv_bwd`.
    pub kernel: &'static str,
    /// Shape token, e.g. `256x256x256` or `n2c4h14w14_oc8k5`.
    pub shape: String,
    /// Backend token: `blocked`, `reference` or `f16`.
    pub backend: &'static str,
    /// Best observed wall-clock nanoseconds for one invocation.
    pub ns_per_op: f64,
    /// Throughput implied by `ns_per_op` (FLOPs / ns ≡ GFLOP/s). For the
    /// f16 backend this counts the same MAC lattice — quantization
    /// overhead shows up as lost throughput, which is the point.
    pub gflops: f64,
}

/// End-to-end figure: mean wall-clock seconds per federated round under
/// one backend (from [`fedcav_fl::History::mean_round_wall_secs`],
/// i.e. the `PhaseTimings` the round loop records).
#[derive(Debug, Clone)]
pub struct E2eMeasurement {
    /// Backend token: `blocked`, `reference` or `f16`.
    pub backend: &'static str,
    /// Mean wall-clock seconds per round.
    pub mean_round_wall_secs: f64,
    /// Rounds the mean is over.
    pub rounds: usize,
}

/// Everything `BENCH_kernels.json` carries.
#[derive(Debug, Clone, Default)]
pub struct KernelReport {
    /// Per-shape kernel timings, one row per (kernel, shape, backend).
    pub kernels: Vec<KernelMeasurement>,
    /// End-to-end round timings per backend.
    pub e2e: Vec<E2eMeasurement>,
}

impl KernelReport {
    /// Serialise to the `BENCH_kernels.json` schema (v2: a `backend`
    /// column replaces v1's two-valued `mode`, and every shape carries a
    /// row per registered backend).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"fedcav-kernel-bench-v2\",\n");
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let sep = if i + 1 == self.kernels.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"backend\": \"{}\", \
                 \"ns_per_op\": {:.1}, \"gflops\": {:.4}}}{sep}\n",
                k.kernel, k.shape, k.backend, k.ns_per_op, k.gflops
            ));
        }
        out.push_str("  ],\n  \"e2e\": [\n");
        for (i, e) in self.e2e.iter().enumerate() {
            let sep = if i + 1 == self.e2e.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"backend\": \"{}\", \"mean_round_wall_secs\": {:.6}, \"rounds\": {}}}{sep}\n",
                e.backend, e.mean_round_wall_secs, e.rounds
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Speedup of `fast` over `slow` for a `(kernel, shape)` pair, if
    /// both backends were measured.
    pub fn speedup_of(
        &self,
        kernel: &str,
        shape: &str,
        fast: BackendKind,
        slow: BackendKind,
    ) -> Option<f64> {
        let find = |backend: &str| {
            self.kernels
                .iter()
                .find(|k| k.kernel == kernel && k.shape == shape && k.backend == backend)
                .map(|k| k.ns_per_op)
        };
        let fast_ns = find(backend_token(fast))?;
        let slow_ns = find(backend_token(slow))?;
        Some(slow_ns / fast_ns.max(f64::MIN_POSITIVE))
    }

    /// Blocked-over-reference speedup for a `(kernel, shape)` pair — the
    /// headline acceptance number.
    pub fn speedup(&self, kernel: &str, shape: &str) -> Option<f64> {
        self.speedup_of(kernel, shape, BackendKind::CpuBlocked, BackendKind::Reference)
    }
}

/// Best-of-`reps` wall-clock nanoseconds for `f` (one warm-up call first).
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        let ns = start.elapsed().as_nanos() as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

/// A matmul problem size `[m,k] × [k,n]`.
#[derive(Debug, Clone, Copy)]
pub struct MatmulShape {
    /// Rows of the left operand.
    pub m: usize,
    /// Shared (inner) dimension.
    pub k: usize,
    /// Columns of the right operand.
    pub n: usize,
}

impl MatmulShape {
    /// Cubic shape `s×s×s`.
    pub fn cube(s: usize) -> MatmulShape {
        MatmulShape { m: s, k: s, n: s }
    }

    fn token(&self) -> String {
        format!("{}x{}x{}", self.m, self.k, self.n)
    }

    fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.k as f64 * self.n as f64
    }
}

/// Time one backend's matmul on one shape through its static
/// [`TensorOps`] entry point (`Epilogue::None`, so every backend runs the
/// identical per-element op sequence modulo its storage grid).
fn time_matmul<B: Backend>(shape: MatmulShape, reps: usize, a: &Tensor, b: &Tensor) -> KernelMeasurement {
    let mut out = Vec::new();
    let ns = time_best(reps, || {
        B::matmul(a.as_slice(), b.as_slice(), shape.m, shape.k, shape.n, Epilogue::None, &mut out);
    });
    KernelMeasurement {
        kernel: "matmul",
        shape: shape.token(),
        backend: B::NAME,
        ns_per_op: ns,
        gflops: shape.flops() / ns,
    }
}

/// Time every backend's matmul on one shape.
pub fn bench_matmul(shape: MatmulShape, reps: usize) -> Vec<KernelMeasurement> {
    let mut rng = StdRng::seed_from_u64(0x3A7);
    let a = init::uniform(&mut rng, &[shape.m, shape.k], -1.0, 1.0);
    let b = init::uniform(&mut rng, &[shape.k, shape.n], -1.0, 1.0);
    vec![
        time_matmul::<CpuBlocked>(shape, reps, &a, &b),
        time_matmul::<Reference>(shape, reps, &a, &b),
        time_matmul::<F16Storage>(shape, reps, &a, &b),
    ]
}

/// A convolution problem size (square spatial extent, square kernel).
#[derive(Debug, Clone, Copy)]
pub struct ConvShape {
    /// Batch size.
    pub n: usize,
    /// Input channels.
    pub c: usize,
    /// Input spatial extent (height = width).
    pub hw: usize,
    /// Output channels.
    pub oc: usize,
    /// Kernel extent (height = width).
    pub k: usize,
}

impl ConvShape {
    fn token(&self) -> String {
        format!("n{}c{}h{}w{}_oc{}k{}", self.n, self.c, self.hw, self.hw, self.oc, self.k)
    }

    /// Forward MAC-lattice FLOPs (stride 1, no padding).
    fn fwd_flops(&self) -> f64 {
        let o = (self.hw - self.k + 1) as f64;
        2.0 * self.n as f64 * self.oc as f64 * o * o * self.c as f64 * (self.k * self.k) as f64
    }
}

/// Time one backend's conv forward + backward on one shape through its
/// static [`TensorOps`] entry points — the exact code path a
/// `fedcav_nn::Conv2d<B>` layer runs.
fn time_conv<B: Backend>(
    shape: ConvShape,
    reps: usize,
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    d_out: &Tensor,
) -> Vec<KernelMeasurement> {
    let params = Conv2dParams::default();
    let mut scratch = Im2colScratch::new();
    let fwd = time_best(reps, || {
        B::conv2d_forward(input, weight, bias, params, false, &mut scratch).expect("conv fwd");
    });
    let bwd = time_best(reps, || {
        B::conv2d_backward(input, weight, d_out, params, &mut scratch).expect("conv bwd");
    });
    let fwd_flops = shape.fwd_flops();
    // The backward pass walks the MAC lattice twice (d_input + d_weight),
    // same accounting as `fedcav_tensor::counters`.
    let bwd_flops = 2.0 * fwd_flops;
    let meas = |kernel: &'static str, ns: f64, flops: f64| KernelMeasurement {
        kernel,
        shape: shape.token(),
        backend: B::NAME,
        ns_per_op: ns,
        gflops: flops / ns,
    };
    vec![meas("conv_fwd", fwd, fwd_flops), meas("conv_bwd", bwd, bwd_flops)]
}

/// Time every backend's conv forward + backward on one shape: `blocked`
/// and `f16` run the scratch-arena im2col lowering, `reference` the
/// direct convolution — exactly the paths `fedcav_nn::Conv2d<B>`
/// dispatches to. No process-global state is touched.
pub fn bench_conv(shape: ConvShape, reps: usize) -> Vec<KernelMeasurement> {
    let mut rng = StdRng::seed_from_u64(0xC0CA ^ 0x5A5A);
    let input = init::uniform(&mut rng, &[shape.n, shape.c, shape.hw, shape.hw], -1.0, 1.0);
    let weight = init::uniform(&mut rng, &[shape.oc, shape.c, shape.k, shape.k], -0.5, 0.5);
    let bias = Tensor::zeros(&[shape.oc]);
    let d_out = conv2d_forward(&input, &weight, &bias, Conv2dParams::default()).expect("conv shape");

    let mut out = time_conv::<CpuBlocked>(shape, reps, &input, &weight, &bias, &d_out);
    out.extend(time_conv::<Reference>(shape, reps, &input, &weight, &bias, &d_out));
    out.extend(time_conv::<F16Storage>(shape, reps, &input, &weight, &bias, &d_out));
    out
}

/// The spec the end-to-end figure runs: LeNet-5 on MNIST-like data, small
/// enough for a bench smoke job when `tiny`.
pub fn e2e_spec(tiny: bool) -> ExperimentSpec {
    if tiny {
        ExperimentSpec {
            kind: SyntheticKind::MnistLike,
            n_clients: 4,
            train_per_class: 6,
            test_per_class: 2,
            rounds: 2,
            sample_ratio: 0.5,
            local: LocalConfig { epochs: 1, batch_size: 8, lr: 0.05, prox_mu: 0.0 },
            seed: 7,
            noise_override: None,
            executor: ClientExecutor::Sequential,
            backend: BackendKind::CpuBlocked,
            codec: fedcav_fl::CodecSpec::Identity,
        }
    } else {
        ExperimentSpec::fast(SyntheticKind::MnistLike, 3)
    }
}

/// Mean round wall-seconds of one standard FedCav run on `backend`. The
/// ambient process-global backend is restored before returning.
pub fn bench_e2e(spec: &ExperimentSpec, backend: BackendKind) -> E2eMeasurement {
    let ambient = backend_kind();
    let spec = ExperimentSpec { backend, ..*spec };
    let history = run_standard(&spec, Dist::NonIidBalanced, Algo::FedCav).expect("e2e run");
    force_backend_kind(ambient);
    E2eMeasurement {
        backend: backend_token(backend),
        mean_round_wall_secs: history.mean_round_wall_secs().unwrap_or(0.0),
        rounds: history.len(),
    }
}

/// The standard shape sets. `tiny` keeps a CI smoke job in milliseconds;
/// the default set includes the 256×256×256 acceptance shape.
pub fn standard_shapes(tiny: bool) -> (Vec<MatmulShape>, Vec<ConvShape>) {
    if tiny {
        (
            vec![MatmulShape::cube(32), MatmulShape { m: 24, k: 48, n: 16 }],
            vec![ConvShape { n: 1, c: 2, hw: 8, oc: 4, k: 3 }],
        )
    } else {
        (
            vec![
                MatmulShape::cube(64),
                MatmulShape::cube(128),
                MatmulShape::cube(256),
                MatmulShape { m: 512, k: 128, n: 64 },
            ],
            vec![
                ConvShape { n: 4, c: 1, hw: 28, oc: 6, k: 5 },
                ConvShape { n: 4, c: 6, hw: 12, oc: 16, k: 5 },
            ],
        )
    }
}

/// Run the full suite and assemble the report: every shape × every
/// backend, then one end-to-end run per backend.
pub fn run_suite(tiny: bool, reps: usize) -> KernelReport {
    let (mat_shapes, conv_shapes) = standard_shapes(tiny);
    let mut report = KernelReport::default();
    for s in mat_shapes {
        report.kernels.extend(bench_matmul(s, reps));
    }
    for s in conv_shapes {
        report.kernels.extend(bench_conv(s, reps));
    }
    let spec = e2e_spec(tiny);
    for kind in BackendKind::ALL {
        report.e2e.push(bench_e2e(&spec, kind));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_shape() {
        let report = KernelReport {
            kernels: vec![
                KernelMeasurement {
                    kernel: "matmul",
                    shape: "8x8x8".into(),
                    backend: "blocked",
                    ns_per_op: 100.0,
                    gflops: 10.24,
                },
                KernelMeasurement {
                    kernel: "matmul",
                    shape: "8x8x8".into(),
                    backend: "reference",
                    ns_per_op: 400.0,
                    gflops: 2.56,
                },
            ],
            e2e: vec![E2eMeasurement {
                backend: "blocked",
                mean_round_wall_secs: 0.25,
                rounds: 3,
            }],
        };
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"schema\": \"fedcav-kernel-bench-v2\""));
        assert!(json.contains("\"shape\": \"8x8x8\""));
        assert!(json.contains("\"backend\": \"blocked\""));
        assert!(json.contains("\"mean_round_wall_secs\": 0.250000"));
        // No trailing commas (the classic hand-rolled-JSON bug).
        assert!(!json.contains(",\n  ]"));
        assert!(!json.contains(",\n  ]}"));
        assert_eq!(report.speedup("matmul", "8x8x8"), Some(4.0));
        assert_eq!(report.speedup("matmul", "9x9x9"), None);
        assert_eq!(
            report.speedup_of("matmul", "8x8x8", BackendKind::Reference, BackendKind::CpuBlocked),
            Some(0.25)
        );
    }

    #[test]
    fn tiny_suite_measures_every_backend_per_shape() {
        let report = run_suite(true, 1);
        assert!(!report.kernels.is_empty());
        for k in &report.kernels {
            assert!(k.ns_per_op > 0.0, "{k:?}");
            assert!(k.gflops > 0.0, "{k:?}");
            for kind in BackendKind::ALL {
                let token = backend_token(kind);
                assert!(
                    report
                        .kernels
                        .iter()
                        .any(|o| o.kernel == k.kernel && o.shape == k.shape && o.backend == token),
                    "missing {token} row for {k:?}"
                );
            }
        }
        assert_eq!(report.e2e.len(), BackendKind::ALL.len());
        for kind in BackendKind::ALL {
            let token = backend_token(kind);
            let e = report.e2e.iter().find(|e| e.backend == token);
            let e = e.unwrap_or_else(|| panic!("missing e2e row for {token}"));
            assert!(e.mean_round_wall_secs > 0.0);
            assert_eq!(e.rounds, 2);
        }
    }

    #[test]
    fn e2e_restores_the_ambient_backend() {
        // The offline harness runs tests with --test-threads=1, so forcing
        // the process-global backend here cannot race another test.
        let ambient = backend_kind();
        force_backend_kind(BackendKind::CpuBlocked);
        let spec = e2e_spec(true);
        let e = bench_e2e(&spec, BackendKind::Reference);
        assert_eq!(e.backend, "reference");
        assert_eq!(backend_kind(), BackendKind::CpuBlocked, "ambient backend restored");
        force_backend_kind(ambient);
    }
}
