//! Compression benchmark: the uplink-bytes / final-accuracy Pareto sweep
//! over the wire-codec grid (DESIGN.md §17), serialised to the
//! `BENCH_compression.json` artifact behind the `compression_bench` binary.
//!
//! Every grid point runs the *same* standard FedCav experiment — same
//! seed, same partition, same client schedule — differing only in the
//! [`CodecSpec`] installed on the delivery stage, so the `uplink_ratio`
//! column isolates what the codec buys and `accuracy_delta_pts` what it
//! costs. FedCav is the deliberate choice of strategy: it is the one
//! algorithm whose uplink carries the inference loss ("one extra float",
//! §6), so the sweep exercises the loss-in-frame wire path end to end.
//!
//! The JSON is hand-rolled (no serde in the workspace), same style as
//! [`crate::scalebench`]: flat records, no escaping needed — scheme names
//! come from [`CodecSpec::name`], which emits only `[a-z0-9:.+]`.

use crate::experiment::{run_standard, Algo, Dist, ExperimentSpec};
use fedcav_data::SyntheticKind;
use fedcav_fl::{ClientExecutor, CodecSpec, History, LocalConfig, Result};
use fedcav_tensor::BackendKind;

/// One codec grid point.
#[derive(Debug, Clone)]
pub struct CompressionRow {
    /// Codec name from [`CodecSpec::name`] (`"identity"` is the baseline).
    pub scheme: String,
    /// Final-round test accuracy under this codec.
    pub final_accuracy: f32,
    /// Accuracy minus the baseline's, in percentage points (positive =
    /// the compressed run ended *better*; lossless schemes land at 0.0).
    pub accuracy_delta_pts: f32,
    /// Total uplink bytes across the run (encoded frames + envelopes).
    pub total_up_bytes: u64,
    /// Total downlink bytes across the run (always full-precision f32).
    pub total_down_bytes: u64,
    /// Baseline uplink bytes divided by this scheme's: >1 is a win.
    pub uplink_ratio: f64,
}

/// Everything `BENCH_compression.json` carries.
#[derive(Debug, Clone, Default)]
pub struct CompressionReport {
    /// One row per grid point, baseline first.
    pub rows: Vec<CompressionRow>,
}

impl CompressionReport {
    /// Serialise to the `BENCH_compression.json` schema.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"fedcav-compression-bench-v1\",\n");
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let sep = if i + 1 == self.rows.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"scheme\": \"{}\", \"final_accuracy\": {:.4}, \
                 \"accuracy_delta_pts\": {:.2}, \"total_up_bytes\": {}, \
                 \"total_down_bytes\": {}, \"uplink_ratio\": {:.3}}}{sep}\n",
                r.scheme,
                r.final_accuracy,
                r.accuracy_delta_pts,
                r.total_up_bytes,
                r.total_down_bytes,
                r.uplink_ratio
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The acceptance readout: does `scheme` (by exact name) reach at
    /// least `min_ratio`× uplink reduction while losing at most
    /// `max_loss_pts` accuracy points against the baseline?
    pub fn meets(&self, scheme: &str, min_ratio: f64, max_loss_pts: f32) -> bool {
        self.rows
            .iter()
            .find(|r| r.scheme == scheme)
            .is_some_and(|r| r.uplink_ratio >= min_ratio && r.accuracy_delta_pts >= -max_loss_pts)
    }
}

/// The standard codec grid, baseline first: the two lossless transports
/// (identity, delta), int8 with and without the delta stage, f16+delta,
/// and top-k at a 10% keep ratio both raw and composed with delta. The
/// raw top-k point is deliberately included as the Pareto cautionary
/// tale: sparsifying *parameters* instead of *changes* discards 90% of
/// the model every round.
pub fn codec_grid() -> Vec<CodecSpec> {
    vec![
        CodecSpec::Identity,
        CodecSpec::Delta,
        CodecSpec::Int8 { delta: false },
        CodecSpec::Int8 { delta: true },
        CodecSpec::F16 { delta: true },
        CodecSpec::TopK { ratio: 0.1, delta: false },
        CodecSpec::TopK { ratio: 0.1, delta: true },
    ]
}

/// Sum a run's traffic ledger: (uplink, downlink) bytes across all rounds.
fn traffic(h: &History) -> (u64, u64) {
    let up = h.records.iter().map(|r| r.bytes_up).sum();
    let down = h.records.iter().map(|r| r.bytes_down).sum();
    (up, down)
}

/// The spec every grid point runs. `tiny` keeps unit tests in
/// milliseconds; otherwise it is the standard fast preset (LeNet-5 on
/// MNIST-like data, 30 clients at q=0.3) over `rounds` rounds.
pub fn sweep_spec(tiny: bool, rounds: usize) -> ExperimentSpec {
    if tiny {
        ExperimentSpec {
            kind: SyntheticKind::MnistLike,
            n_clients: 4,
            train_per_class: 6,
            test_per_class: 2,
            rounds: 2,
            sample_ratio: 0.5,
            local: LocalConfig { epochs: 1, batch_size: 8, lr: 0.05, prox_mu: 0.0 },
            seed: 7,
            noise_override: None,
            executor: ClientExecutor::Sequential,
            backend: BackendKind::CpuBlocked,
            codec: CodecSpec::Identity,
        }
    } else {
        ExperimentSpec::fast(SyntheticKind::MnistLike, rounds)
    }
}

/// Run one grid point: the standard FedCav experiment with `codec`
/// installed (identity = the uncompressed legacy path).
pub fn run_point(spec: &ExperimentSpec, codec: CodecSpec) -> Result<(f32, u64, u64)> {
    let spec = ExperimentSpec { codec, ..*spec };
    let history = run_standard(&spec, Dist::IidBalanced, Algo::FedCav)?;
    let (up, down) = traffic(&history);
    Ok((history.final_accuracy().unwrap_or(0.0), up, down))
}

/// Run the whole grid and assemble the Pareto report. The identity
/// baseline runs first; every later row is normalised against it.
pub fn run_suite(spec: &ExperimentSpec) -> Result<CompressionReport> {
    let mut report = CompressionReport::default();
    let mut baseline: Option<(f32, u64)> = None;
    for codec in codec_grid() {
        let (acc, up, down) = run_point(spec, codec)?;
        let (base_acc, base_up) = *baseline.get_or_insert((acc, up));
        report.rows.push(CompressionRow {
            scheme: codec.name(),
            final_accuracy: acc,
            accuracy_delta_pts: (acc - base_acc) * 100.0,
            total_up_bytes: up,
            total_down_bytes: down,
            uplink_ratio: if up == 0 { 0.0 } else { base_up as f64 / up as f64 },
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_shape() {
        let report = CompressionReport {
            rows: vec![
                CompressionRow {
                    scheme: "identity".to_string(),
                    final_accuracy: 0.83,
                    accuracy_delta_pts: 0.0,
                    total_up_bytes: 4_000_000,
                    total_down_bytes: 9_000_000,
                    uplink_ratio: 1.0,
                },
                CompressionRow {
                    scheme: "int8+delta".to_string(),
                    final_accuracy: 0.828,
                    accuracy_delta_pts: -0.2,
                    total_up_bytes: 1_000_000,
                    total_down_bytes: 9_000_000,
                    uplink_ratio: 4.0,
                },
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"fedcav-compression-bench-v1\""));
        assert!(json.contains("\"scheme\": \"int8+delta\""));
        assert!(json.contains("\"uplink_ratio\": 4.000"));
        // No trailing commas (the classic hand-rolled-JSON bug).
        assert!(!json.contains(",\n  ]"));
        assert!(report.meets("int8+delta", 3.0, 1.0));
        assert!(!report.meets("int8+delta", 5.0, 1.0));
        assert!(!report.meets("int8+delta", 3.0, 0.1));
        assert!(!report.meets("missing", 1.0, 100.0));
    }

    #[test]
    fn grid_round_trips_through_spec_names() {
        for codec in codec_grid() {
            assert_eq!(CodecSpec::parse(&codec.name()), Some(codec));
        }
    }

    #[test]
    fn tiny_sweep_compresses_uplink_without_breaking_the_run() {
        let spec = sweep_spec(true, 2);
        let report = run_suite(&spec).unwrap();
        assert_eq!(report.rows.len(), codec_grid().len());
        let baseline = &report.rows[0];
        assert_eq!(baseline.scheme, "identity");
        assert_eq!(baseline.uplink_ratio, 1.0);
        for r in &report.rows {
            assert!(r.total_up_bytes > 0, "{}", r.scheme);
            assert_eq!(r.total_down_bytes, baseline.total_down_bytes, "{}", r.scheme);
            assert!((0.0..=1.0).contains(&r.final_accuracy), "{}", r.scheme);
        }
        // The deterministic part of the Pareto claim holds at any scale:
        // int8 quarters the uplink, top-k@10% roughly quintuples it.
        let ratio_of = |name: &str| {
            report.rows.iter().find(|r| r.scheme == name).map(|r| r.uplink_ratio).unwrap_or(0.0)
        };
        assert!(ratio_of("int8+delta") > 3.0);
        assert!(ratio_of("topk:0.1+delta") > 3.0);
        assert!((ratio_of("delta") - 1.0).abs() < 0.05, "lossless delta is not smaller");
    }
}
