//! Experiment specifications and runners shared by all figure harnesses.

use fedcav_attack::{ModelReplacement, ModelReplacementConfig};
use fedcav_core::{FedCav, FedCavConfig};
use fedcav_data::poison::{flip_all_labels, flip_fraction};
use fedcav_data::{
    partition, Dataset, FreshClassSplit, ImbalanceSpec, SyntheticConfig, SyntheticKind,
};
use fedcav_fl::{
    CentralizedTrainer, ClientExecutor, CodecSpec, CollectingTracer, FedAvg, FedProx, History,
    LocalConfig, Simulation, SimulationConfig, Strategy,
};
use fedcav_nn::{models, Sequential};
use fedcav_tensor::{backend_kind, force_backend_kind, BackendKind, Result};
use fedcav_trace::Event;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Harness scale: CI-friendly vs paper-scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced clients/samples/rounds so `cargo bench` finishes in minutes.
    Fast,
    /// The paper's §5.1.4 parameters (n=100, q=0.3, B=10, E=5, η=0.01).
    Full,
}

impl Scale {
    /// Parse from harness CLI args (`--full` selects [`Scale::Full`]).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Fast
        }
    }
}

/// The aggregation algorithms compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Centralized gradient descent (upper-bound baseline).
    Centralized,
    /// FedAvg (McMahan et al.).
    FedAvg,
    /// FedProx with μ = 0.01.
    FedProx,
    /// FedCav, paper configuration (clip + detection).
    FedCav,
    /// FedCav without loss clipping (Fig. 5 ablation).
    FedCavNoClip,
    /// FedCav without detection (Fig. 6 configuration).
    FedCavNoDetect,
}

impl Algo {
    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Centralized => "Centralized",
            Algo::FedAvg => "FedAvg",
            Algo::FedProx => "FedProx",
            Algo::FedCav => "FedCav",
            Algo::FedCavNoClip => "FedCav-noClip",
            Algo::FedCavNoDetect => "FedCav-noDetect",
        }
    }

    /// Build the strategy object (not valid for [`Algo::Centralized`]).
    pub fn strategy(self) -> Box<dyn Strategy> {
        match self {
            Algo::Centralized => panic!("Centralized is not an aggregation strategy"),
            Algo::FedAvg => Box::new(FedAvg::new()),
            Algo::FedProx => Box::new(FedProx::new(0.01)),
            Algo::FedCav => Box::new(FedCav::new(FedCavConfig::default())),
            Algo::FedCavNoClip => Box::new(FedCav::new(FedCavConfig {
                clip: false,
                detection: None,
                ..Default::default()
            })),
            Algo::FedCavNoDetect => Box::new(FedCav::new(FedCavConfig::without_detection())),
        }
    }
}

/// Data distribution across clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// IID & balanced (Table 1 row 1).
    IidBalanced,
    /// Non-IID (2 classes/client) & balanced (row 2).
    NonIidBalanced,
    /// Non-IID & imbalanced with the paper's σ (row 3).
    NonIidSigma(f32),
}

impl Dist {
    /// Display name matching Fig. 2's legend.
    pub fn name(self) -> String {
        match self {
            Dist::IidBalanced => "IID&balanced".to_string(),
            Dist::NonIidBalanced => "non-IID&balanced".to_string(),
            Dist::NonIidSigma(s) => format!("non-IID&sigma={s:.0}"),
        }
    }

    /// Partition `data` across `n_clients` according to this distribution.
    pub fn partition(
        self,
        data: &Dataset,
        n_clients: usize,
        rng: &mut StdRng,
    ) -> partition::ClientPartition {
        match self {
            Dist::IidBalanced => partition::iid_balanced(data, n_clients, rng),
            Dist::NonIidBalanced => {
                partition::noniid(data, n_clients, 2, ImbalanceSpec::Balanced, rng)
            }
            Dist::NonIidSigma(s) => {
                partition::noniid(data, n_clients, 2, ImbalanceSpec::PaperSigma(s), rng)
            }
        }
    }
}

/// A fully-specified experiment environment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentSpec {
    /// Dataset tier.
    pub kind: SyntheticKind,
    /// Deployment size `n`.
    pub n_clients: usize,
    /// Training samples generated per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Communication rounds to run.
    pub rounds: usize,
    /// Client sample ratio `q`.
    pub sample_ratio: f64,
    /// Local-training parameters.
    pub local: LocalConfig,
    /// Master seed.
    pub seed: u64,
    /// Pixel-noise override for the synthetic data (difficulty knob).
    /// Fast scale raises it so the reduced-size task does not saturate in a
    /// couple of rounds; `None` keeps the tier default.
    pub noise_override: Option<f32>,
    /// Client executor for the training stage. Results are bit-identical
    /// across executors; only wall-clock changes. The presets read
    /// `FEDCAV_EXECUTOR` (e.g. `threads:4`) so CI can sweep it.
    pub executor: ClientExecutor,
    /// Tensor backend forced for the run. The presets default to the
    /// ambient [`backend_kind`], so `FEDCAV_BACKEND` still selects it from
    /// the environment; set explicitly to pin a spec to one backend.
    pub backend: BackendKind,
    /// Uplink wire codec for the federated runners. The presets default to
    /// [`CodecSpec::Identity`], which keeps the legacy uncompressed path
    /// (no transport installed, billing byte-identical to prior releases);
    /// any other scheme routes every upload through
    /// `decode(encode(·))` at the delivery stage and bills encoded frames.
    pub codec: CodecSpec,
}

impl ExperimentSpec {
    /// CI-friendly scale: 30 clients, 90 samples/class, shortened training.
    pub fn fast(kind: SyntheticKind, rounds: usize) -> Self {
        ExperimentSpec {
            kind,
            n_clients: 30,
            train_per_class: 90,
            test_per_class: 20,
            rounds,
            sample_ratio: 0.3,
            local: LocalConfig { epochs: 3, batch_size: 10, lr: 0.03, prox_mu: 0.0 },
            seed: 42,
            noise_override: Some(match kind {
                SyntheticKind::MnistLike => 0.45,
                SyntheticKind::FmnistLike => 0.55,
                SyntheticKind::Cifar10Like => 0.6,
            }),
            executor: ClientExecutor::from_env(),
            backend: backend_kind(),
            codec: CodecSpec::Identity,
        }
    }

    /// Paper-scale: 100 clients, q=0.3, B=10, E=5, η=0.01 (§5.1.4).
    pub fn full(kind: SyntheticKind, rounds: usize) -> Self {
        ExperimentSpec {
            kind,
            n_clients: 100,
            train_per_class: 500,
            test_per_class: 100,
            rounds,
            sample_ratio: 0.3,
            local: LocalConfig { epochs: 5, batch_size: 10, lr: 0.01, prox_mu: 0.0 },
            seed: 42,
            noise_override: None,
            executor: ClientExecutor::from_env(),
            backend: backend_kind(),
            codec: CodecSpec::Identity,
        }
    }

    /// Pick by scale.
    pub fn at(scale: Scale, kind: SyntheticKind, fast_rounds: usize, full_rounds: usize) -> Self {
        match scale {
            Scale::Fast => Self::fast(kind, fast_rounds),
            Scale::Full => Self::full(kind, full_rounds),
        }
    }

    /// Generate the (train, test) data for this spec.
    pub fn data(&self) -> Result<(Dataset, Dataset)> {
        let mut cfg = SyntheticConfig::new(self.kind, self.train_per_class, self.test_per_class)
            .with_seed(self.seed);
        if let Some(noise) = self.noise_override {
            cfg = cfg.with_noise(noise);
        }
        cfg.generate()
    }

    /// The paper's model for this dataset tier (§5.1.1), seeded for
    /// reproducibility: every `factory()` call yields identical weights.
    pub fn model_factory(&self) -> Box<dyn Fn() -> Sequential + Send + Sync> {
        let kind = self.kind;
        let seed = self.seed ^ 0xF00D;
        Box::new(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            match kind {
                SyntheticKind::MnistLike => models::lenet5(&mut rng, 10),
                SyntheticKind::FmnistLike => models::cnn9(&mut rng, 10),
                SyntheticKind::Cifar10Like => models::resnet18_default(&mut rng, 10),
            }
        })
    }

    /// Simulation config derived from this spec.
    pub fn sim_config(&self) -> SimulationConfig {
        SimulationConfig {
            sample_ratio: self.sample_ratio,
            local: self.local,
            eval_batch: 64,
            seed: self.seed,
        }
    }
}

/// The shared standard-experiment runner: partition per `dist`, aggregate
/// per `algo`, `spec.rounds` rounds on `spec.executor`. For
/// [`Algo::Centralized`] the pooled trainer is used instead (it has no
/// tracer hook, so a supplied `tracer` stays empty). [`run_standard`] and
/// [`run_standard_traced`] are thin wrappers over this.
pub fn run_standard_with(
    spec: &ExperimentSpec,
    dist: Dist,
    algo: Algo,
    tracer: Option<Arc<CollectingTracer>>,
) -> Result<History> {
    force_backend_kind(spec.backend);
    let (train, test) = spec.data()?;
    let factory = spec.model_factory();
    if algo == Algo::Centralized {
        let mut t = CentralizedTrainer::new(&*factory, train, test, spec.local, 64, spec.seed);
        t.run(spec.rounds)?;
        return Ok(t.history().clone());
    }
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xD157);
    let part = dist.partition(&train, spec.n_clients, &mut rng);
    let clients = part.client_datasets(&train)?;
    let mut sim = Simulation::new(&*factory, clients, test, algo.strategy(), spec.sim_config());
    sim.set_executor(spec.executor);
    if spec.codec != CodecSpec::Identity {
        sim.set_codec(spec.codec);
    }
    if let Some(tracer) = tracer {
        sim.set_tracer(tracer);
    }
    sim.run(spec.rounds)?;
    Ok(sim.history().clone())
}

/// Run one federated experiment: partition per `dist`, aggregate per
/// `algo`, `spec.rounds` rounds. For [`Algo::Centralized`] the pooled
/// trainer is used instead.
pub fn run_standard(spec: &ExperimentSpec, dist: Dist, algo: Algo) -> Result<History> {
    run_standard_with(spec, dist, algo, None)
}

/// Like [`run_standard`], but with a [`CollectingTracer`] installed and the
/// op-level kernel counters enabled for the duration of the run: returns
/// the history together with the captured trace events, ready for
/// `fedcav_trace::export::{to_jsonl, to_csv, write_jsonl}`. Results are
/// bit-identical to [`run_standard`] — tracing only observes.
/// [`Algo::Centralized`] has no tracer hook and yields an empty event list.
pub fn run_standard_traced(
    spec: &ExperimentSpec,
    dist: Dist,
    algo: Algo,
) -> Result<(History, Vec<Event>)> {
    let tracer = Arc::new(CollectingTracer::new());
    let was_counting = fedcav_tensor::counters::is_enabled();
    fedcav_tensor::counters::enable();
    let outcome = run_standard_with(spec, dist, algo, Some(tracer.clone()));
    if !was_counting {
        fedcav_tensor::counters::disable();
    }
    Ok((outcome?, tracer.take()))
}

/// Outcome of a fresh-class run: the history plus what's needed to read
/// out fresh-class recall from the final model.
pub struct FreshClassOutcome {
    /// Per-round records.
    pub history: History,
    /// Final global model parameters.
    pub final_params: Vec<f32>,
    /// Which classes were fresh.
    pub fresh_classes: Vec<usize>,
}

impl FreshClassOutcome {
    /// Mean recall of the fresh classes on `test` under the final model.
    pub fn fresh_recall(&self, spec: &ExperimentSpec, test: &Dataset) -> Result<Option<f32>> {
        let factory = spec.model_factory();
        let mut model = factory();
        model.set_flat_params(&self.final_params)?;
        let cm = fedcav_fl::evaluate_confusion(&mut model, test, 64)?;
        Ok(cm.subset_recall(&self.fresh_classes))
    }
}

/// Fig. 4 runner: pre-train on common classes, then run the federated
/// phase over the full (common + fresh) data. For `Algo::Centralized` the
/// federated phase is replaced by pooled training from the same
/// pre-trained weights.
pub fn run_fresh_class(
    spec: &ExperimentSpec,
    alpha: f64,
    dist: Dist,
    algo: Algo,
    pretrain_rounds: usize,
) -> Result<FreshClassOutcome> {
    force_backend_kind(spec.backend);
    let (train, test) = spec.data()?;
    let factory = spec.model_factory();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xA1FA);
    let split = FreshClassSplit::new(&train, alpha, &mut rng)?;

    // Pre-train on the common classes (the paper "pre-trains the global
    // model in the common class").
    let mut pre = CentralizedTrainer::new(
        &*factory,
        split.common.clone(),
        test.clone(),
        spec.local,
        64,
        spec.seed ^ 0x9E,
    );
    pre.run(pretrain_rounds)?;
    let pretrained = pre.global().to_vec();

    let full = split.full()?;
    if algo == Algo::Centralized {
        let mut t =
            CentralizedTrainer::new(&*factory, full, test, spec.local, 64, spec.seed ^ 0xCE);
        t.set_global(pretrained)?;
        t.run(spec.rounds)?;
        return Ok(FreshClassOutcome {
            history: t.history().clone(),
            final_params: t.global().to_vec(),
            fresh_classes: split.fresh_classes,
        });
    }
    let part = dist.partition(&full, spec.n_clients, &mut rng);
    let clients = part.client_datasets(&full)?;
    let mut sim = Simulation::new(&*factory, clients, test, algo.strategy(), spec.sim_config());
    sim.set_executor(spec.executor);
    sim.set_global(pretrained)?;
    sim.run(spec.rounds)?;
    Ok(FreshClassOutcome {
        history: sim.history().clone(),
        final_params: sim.global().to_vec(),
        fresh_classes: split.fresh_classes,
    })
}

/// Fig. 6 / Fig. 7 runner: run `algo` under a model-replacement attack at
/// `attack_round`, with the adversary's model trained on data whose labels
/// are flipped at `poison_fraction` (1.0 = the paper's Fig. 6 "all labels
/// flipped").
pub fn run_under_attack(
    spec: &ExperimentSpec,
    dist: Dist,
    algo: Algo,
    attack_round: usize,
    poison_fraction: f64,
) -> Result<History> {
    force_backend_kind(spec.backend);
    let (train, test) = spec.data()?;
    let factory = spec.model_factory();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ X_ATTACK_SEED);
    let part = dist.partition(&train, spec.n_clients, &mut rng);
    let clients = part.client_datasets(&train)?;

    // The adversary holds a small poisoned shard of its own.
    let adv_data = clients[0].clone();
    let poisoned = if poison_fraction >= 1.0 {
        flip_all_labels(&adv_data)
    } else {
        flip_fraction(&adv_data, poison_fraction, &mut rng)
    };
    let adversary = ModelReplacement::new(
        &*factory,
        poisoned,
        ModelReplacementConfig {
            attack_rounds: vec![attack_round],
            boost: None,
            reported_loss: 5.0,
            local: spec.local,
            seed: spec.seed ^ 0xE011,
        },
    );

    let mut sim = Simulation::new(&*factory, clients, test, algo.strategy(), spec.sim_config());
    sim.set_executor(spec.executor).set_interceptor(Box::new(adversary));
    sim.run(spec.rounds)?;
    Ok(sim.history().clone())
}

const X_ATTACK_SEED: u64 = 0xA77AC4;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec {
            kind: SyntheticKind::MnistLike,
            n_clients: 4,
            train_per_class: 4,
            test_per_class: 2,
            rounds: 2,
            sample_ratio: 0.5,
            local: LocalConfig { epochs: 1, batch_size: 8, lr: 0.05, prox_mu: 0.0 },
            seed: 7,
            noise_override: None,
            executor: ClientExecutor::Sequential,
            backend: BackendKind::CpuBlocked,
            codec: CodecSpec::Identity,
        }
    }

    #[test]
    fn run_standard_all_algos_produce_history() {
        let spec = tiny_spec();
        for algo in [Algo::Centralized, Algo::FedAvg, Algo::FedProx, Algo::FedCav] {
            let h = run_standard(&spec, Dist::NonIidBalanced, algo).unwrap();
            assert_eq!(h.len(), spec.rounds, "{}", algo.name());
        }
    }

    #[test]
    fn run_standard_traced_captures_round_spans() {
        let spec = tiny_spec();
        let (h, events) = run_standard_traced(&spec, Dist::IidBalanced, Algo::FedAvg).unwrap();
        assert_eq!(h.len(), spec.rounds);
        assert_eq!(events.iter().filter(|e| e.name == "round").count(), spec.rounds);
        assert!(events.iter().any(|e| e.name == "round.ops"), "kernel counters were enabled");
        assert!(h.records.iter().all(|r| r.phases.total_ns > 0));
        // The export path accepts what the round loop emits.
        let jsonl = fedcav_trace::export::to_jsonl(&events);
        assert_eq!(fedcav_trace::export::parse_jsonl(&jsonl).unwrap(), events);
    }

    #[test]
    fn traced_and_untraced_runs_agree() {
        // Both public entry points are wrappers over run_standard_with;
        // tracing must only observe. Phase timings are real wall-clock and
        // legitimately differ, so compare with them zeroed.
        let spec = tiny_spec();
        let strip = |h: &History| {
            h.records
                .iter()
                .map(|r| {
                    let mut r = r.clone();
                    r.phases = Default::default();
                    r
                })
                .collect::<Vec<_>>()
        };
        let plain = run_standard(&spec, Dist::IidBalanced, Algo::FedAvg).unwrap();
        let (traced, _) = run_standard_traced(&spec, Dist::IidBalanced, Algo::FedAvg).unwrap();
        assert_eq!(strip(&plain), strip(&traced));
    }

    #[test]
    fn run_fresh_class_history_len() {
        let spec = tiny_spec();
        let out = run_fresh_class(&spec, 0.3, Dist::NonIidBalanced, Algo::FedCav, 1).unwrap();
        assert_eq!(out.history.len(), spec.rounds);
        assert_eq!(out.fresh_classes.len(), 3);
        let (_, test) = spec.data().unwrap();
        let recall = out.fresh_recall(&spec, &test).unwrap();
        assert!(recall.is_some());
    }

    #[test]
    fn run_under_attack_fires() {
        let spec = tiny_spec();
        let h = run_under_attack(&spec, Dist::IidBalanced, Algo::FedAvg, 0, 1.0).unwrap();
        assert_eq!(h.len(), spec.rounds);
    }

    #[test]
    fn algo_names() {
        assert_eq!(Algo::FedCav.name(), "FedCav");
        assert_eq!(Dist::NonIidSigma(300.0).name(), "non-IID&sigma=300");
    }

    #[test]
    #[should_panic(expected = "not an aggregation strategy")]
    fn centralized_strategy_panics() {
        let _ = Algo::Centralized.strategy();
    }
}
