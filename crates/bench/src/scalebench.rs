//! Scale benchmark machinery: one streaming sharded round
//! ([`ShardedSimulation`]) at increasing deployment sizes, recording round
//! wall-clock seconds and peak resident set size, serialised to the
//! `BENCH_scale.json` trajectory file.
//!
//! The point of the readout is the *shape* of the RSS column: the sharded
//! driver's peak memory is O(shard_size · dim + cohort), so as `n` climbs
//! from 10⁴ to 10⁶ at a fixed sample ratio the peak RSS must stay flat
//! (modulo the cohort's scalar metadata). Peak RSS comes from
//! `/proc/self/status` `VmHWM` — a process-lifetime high-water mark, which
//! is why [`run_suite`] runs the deployment sizes in ascending order: any
//! growth at a larger `n` is visible, and a flat column is meaningful.
//!
//! The JSON is hand-rolled (no serde in the workspace), same style as
//! [`crate::kernelbench`]: flat records, no escaping needed.

use fedcav_core::{FedCav, FedCavConfig};
use fedcav_data::{SyntheticConfig, SyntheticKind};
use fedcav_fl::{
    ClientExecutor, LocalConfig, Population, Result, ShardedConfig, ShardedSimulation,
};
use fedcav_nn::models;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One deployment-size measurement.
#[derive(Debug, Clone)]
pub struct ScaleMeasurement {
    /// Deployment size `n`.
    pub clients: usize,
    /// Sample ratio `q` the round drew with.
    pub sample_ratio: f64,
    /// Cohort size the round actually sampled (`ceil(q · n)`).
    pub cohort: usize,
    /// Clients per shard in the two-pass protocol.
    pub shard_size: usize,
    /// Wall-clock seconds for the round (sampling through aggregation).
    pub round_wall_secs: f64,
    /// Process peak RSS (`VmHWM`) in KiB after the round; 0 where the
    /// platform has no `/proc/self/status`.
    pub peak_rss_kb: u64,
}

/// Everything `BENCH_scale.json` carries.
#[derive(Debug, Clone, Default)]
pub struct ScaleReport {
    /// Ascending-`n` measurements.
    pub rows: Vec<ScaleMeasurement>,
}

impl ScaleReport {
    /// Serialise to the `BENCH_scale.json` schema.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"fedcav-scale-bench-v1\",\n");
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let sep = if i + 1 == self.rows.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"clients\": {}, \"sample_ratio\": {:.4}, \"cohort\": {}, \
                 \"shard_size\": {}, \"round_wall_secs\": {:.6}, \"peak_rss_kb\": {}}}{sep}\n",
                r.clients, r.sample_ratio, r.cohort, r.shard_size, r.round_wall_secs, r.peak_rss_kb
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Peak-RSS growth factor from the smallest to the largest deployment,
    /// if both were measured with nonzero RSS. The acceptance readout:
    /// close to 1.0 means peak memory is independent of `n`.
    pub fn rss_growth(&self) -> Option<f64> {
        let first = self.rows.first()?.peak_rss_kb;
        let last = self.rows.last()?.peak_rss_kb;
        if first == 0 || last == 0 {
            return None;
        }
        Some(last as f64 / first as f64)
    }
}

/// Process peak resident set size in KiB, from `/proc/self/status`'s
/// `VmHWM` line. Returns 0 on platforms without procfs or on any parse
/// surprise — the bench degrades to wall-clock-only, never panics.
pub fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let digits: String = rest.chars().filter(|c| c.is_ascii_digit()).collect();
                return digits.parse().unwrap_or(0);
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// The per-client data profile: deliberately tiny (2 train samples per
/// class) so the bench measures the *driver's* memory behaviour, not the
/// synthetic data generator's throughput.
fn scale_profile() -> SyntheticConfig {
    SyntheticConfig::new(SyntheticKind::MnistLike, 2, 1)
}

/// Time one streaming sharded FedCav round over a deployment of `clients`
/// clients at sample ratio `q`.
pub fn run_point(clients: usize, q: f64, shard_size: usize) -> Result<ScaleMeasurement> {
    let img_len = 28 * 28;
    let factory = move || models::tiny_mlp(&mut StdRng::seed_from_u64(7), img_len, 10);
    let population = Population::new(clients, 42, scale_profile());
    let config = ShardedConfig {
        sample_ratio: q,
        local: LocalConfig { epochs: 1, batch_size: 8, lr: 0.05, prox_mu: 0.0 },
        seed: 42,
        shard_size,
        min_quorum: 1,
        max_param_norm: None,
    };
    let mut sim = ShardedSimulation::new(
        &factory,
        population,
        Box::new(FedCav::new(FedCavConfig::default())),
        config,
    );
    sim.set_executor(ClientExecutor::from_env());
    let start = Instant::now();
    let record = sim.run_round()?;
    let round_wall_secs = start.elapsed().as_secs_f64();
    Ok(ScaleMeasurement {
        clients,
        sample_ratio: q,
        cohort: record.cohort,
        shard_size,
        round_wall_secs,
        peak_rss_kb: peak_rss_kb(),
    })
}

/// The standard deployment sizes, ascending (so the monotone `VmHWM`
/// high-water mark is a per-point readout). `tiny` keeps unit tests in
/// milliseconds; the smoke set tops out at the acceptance deployment,
/// `n = 1_000_000` at `q = 0.3%`.
pub fn scale_points(tiny: bool) -> Vec<usize> {
    if tiny {
        vec![200, 2_000]
    } else {
        vec![10_000, 100_000, 1_000_000]
    }
}

/// Run the full ascending suite and assemble the report.
pub fn run_suite(tiny: bool) -> Result<ScaleReport> {
    let q = 0.003;
    let shard_size = 256;
    let mut report = ScaleReport::default();
    for clients in scale_points(tiny) {
        report.rows.push(run_point(clients, q, shard_size)?);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_shape() {
        let report = ScaleReport {
            rows: vec![
                ScaleMeasurement {
                    clients: 10_000,
                    sample_ratio: 0.003,
                    cohort: 30,
                    shard_size: 256,
                    round_wall_secs: 0.5,
                    peak_rss_kb: 40_000,
                },
                ScaleMeasurement {
                    clients: 1_000_000,
                    sample_ratio: 0.003,
                    cohort: 3000,
                    shard_size: 256,
                    round_wall_secs: 30.0,
                    peak_rss_kb: 44_000,
                },
            ],
        };
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"schema\": \"fedcav-scale-bench-v1\""));
        assert!(json.contains("\"clients\": 1000000"));
        assert!(json.contains("\"peak_rss_kb\": 44000"));
        // No trailing commas (the classic hand-rolled-JSON bug).
        assert!(!json.contains(",\n  ]"));
        assert!((report.rss_growth().unwrap() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn rss_growth_absent_without_rss() {
        let report = ScaleReport {
            rows: vec![ScaleMeasurement {
                clients: 1,
                sample_ratio: 1.0,
                cohort: 1,
                shard_size: 1,
                round_wall_secs: 0.1,
                peak_rss_kb: 0,
            }],
        };
        assert_eq!(report.rss_growth(), None);
    }

    #[test]
    fn peak_rss_reads_without_panicking() {
        let kb = peak_rss_kb();
        if cfg!(target_os = "linux") {
            assert!(kb > 0, "VmHWM should be nonzero on Linux");
        }
    }

    #[test]
    fn tiny_point_runs_a_real_round() {
        let m = run_point(200, 0.01, 64).unwrap();
        assert_eq!(m.clients, 200);
        assert_eq!(m.cohort, 2);
        assert!(m.round_wall_secs > 0.0);
    }
}
