//! # fedcav — umbrella crate
//!
//! Re-exports the whole FedCav reproduction stack behind one dependency:
//!
//! * [`tensor`] — dense f32 tensor kernels,
//! * [`nn`] — layers, models, SGD,
//! * [`data`] — synthetic datasets and non-IID partitioners,
//! * [`fl`] — the federated-learning simulation substrate (FedAvg, FedProx,
//!   centralized baseline, round loop),
//! * [`core`] — the paper's contribution: FedCav aggregation, loss clipping,
//!   anomaly detection and model reverse,
//! * [`attack`] — model replacement / label flipping adversaries,
//! * [`trace`] — std-only structured tracing/profiling (spans, per-round
//!   phase timings, op-level FLOP counters, JSONL/CSV export).
//!
//! See `examples/quickstart.rs` for a minimal end-to-end run.

pub use fedcav_attack as attack;
pub use fedcav_core as core;
pub use fedcav_data as data;
pub use fedcav_fl as fl;
pub use fedcav_nn as nn;
pub use fedcav_tensor as tensor;
pub use fedcav_trace as trace;
