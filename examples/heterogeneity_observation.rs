//! The §3.2 observation at example scale: FedAvg's accuracy degrades as the
//! class-size variance σ grows, and FedCav recovers part of the loss.
//!
//! Run with: `cargo run --release --example heterogeneity_observation`

use fedcav::core::{FedCav, FedCavConfig};
use fedcav::data::{partition, ImbalanceSpec, SyntheticConfig, SyntheticKind};
use fedcav::fl::{FedAvg, LocalConfig, Simulation, SimulationConfig, Strategy};
use fedcav::nn::models;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train, test) = SyntheticConfig::new(SyntheticKind::MnistLike, 40, 10).generate()?;
    let factory = || {
        let mut rng = StdRng::seed_from_u64(7);
        models::lenet5(&mut rng, 10)
    };
    let config = SimulationConfig {
        sample_ratio: 0.5,
        local: LocalConfig { epochs: 3, batch_size: 10, lr: 0.05, prox_mu: 0.0 },
        eval_batch: 64,
        seed: 42,
    };
    let rounds = 10;

    println!("distribution\tFedAvg\tFedCav\t(converged accuracy, {rounds} rounds)");
    let specs: Vec<(String, Option<ImbalanceSpec>)> = vec![
        ("IID&balanced".into(), None),
        ("non-IID&balanced".into(), Some(ImbalanceSpec::Balanced)),
        ("non-IID&sigma=300".into(), Some(ImbalanceSpec::PaperSigma(300.0))),
        ("non-IID&sigma=600".into(), Some(ImbalanceSpec::PaperSigma(600.0))),
        ("non-IID&sigma=900".into(), Some(ImbalanceSpec::PaperSigma(900.0))),
    ];
    for (name, spec) in specs {
        let mut rng = StdRng::seed_from_u64(11);
        let part = match spec {
            None => partition::iid_balanced(&train, 10, &mut rng),
            Some(s) => partition::noniid(&train, 10, 2, s, &mut rng),
        };
        let acc_of = |strategy: Box<dyn Strategy>| -> f32 {
            let mut sim = Simulation::new(
                &factory,
                part.client_datasets(&train).expect("partition"),
                test.clone(),
                strategy,
                config,
            );
            sim.run(rounds).expect("rounds");
            sim.history().converged_accuracy(3).unwrap()
        };
        let avg = acc_of(Box::new(FedAvg::new()));
        let cav = acc_of(Box::new(FedCav::new(FedCavConfig::default())));
        println!("{name}\t{avg:.3}\t{cav:.3}");
    }
    Ok(())
}
