//! A "production-flavoured" deployment: Dirichlet(0.3) label skew, diurnal
//! client availability, FedCav aggregation with detection, wire-codec
//! round-trip of the updates, the §6 communication accounting — and the
//! faults a real fleet throws at a server: crashes, corrupted uploads and
//! stragglers, handled by quarantine, a round deadline and a quorum.
//!
//! Run with: `cargo run --release --example realistic_deployment`

use fedcav::core::{FedCav, FedCavConfig};
use fedcav::data::{dirichlet_partition, PartitionStats, SyntheticConfig, SyntheticKind};
use fedcav::fl::{
    DiurnalAvailability, FaultPolicy, LocalConfig, LogNormalLatency, RandomFaults, Simulation,
    SimulationConfig,
};
use fedcav::nn::{codec, models};
use fedcav::trace::{export, CollectingTracer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train, test) = SyntheticConfig::new(SyntheticKind::MnistLike, 40, 10).generate()?;
    let mut rng = StdRng::seed_from_u64(2);
    let part = dirichlet_partition(&train, 12, 0.3, &mut rng);
    let stats = PartitionStats::compute(&part, &train);
    println!(
        "deployment: 12 clients, Dirichlet(0.3) skew\n\
         label entropy {:.2} nats, size Gini {:.2}, {:.1} classes/client",
        stats.mean_label_entropy, stats.size_gini, stats.mean_classes_per_client
    );

    let factory = || {
        let mut rng = StdRng::seed_from_u64(7);
        models::lenet5(&mut rng, 10)
    };

    // Demonstrate the wire codec the clients would use.
    let params = factory().flat_params();
    let frame = codec::encode(&params, Some(2.31));
    let decoded = codec::decode(&frame)?;
    println!(
        "wire frame: {} params -> {} bytes (loss included: {:?})",
        params.len(),
        frame.len(),
        decoded.inference_loss
    );

    let mut sim = Simulation::new(
        &factory,
        part.client_datasets(&train)?,
        test,
        Box::new(FedCav::new(FedCavConfig::default())),
        SimulationConfig {
            sample_ratio: 0.5,
            local: LocalConfig { epochs: 3, batch_size: 10, lr: 0.05, prox_mu: 0.0 },
            eval_batch: 64,
            seed: 42,
        },
    );
    // Faults: 10% of client-rounds crash, 5% upload NaN/Inf-corrupted
    // parameters, 10% straggle at 8x their modelled latency. The server
    // quarantines corrupted updates, drops anyone past the 20 s deadline,
    // and holds the global model if fewer than 2 valid updates survive.
    sim.set_availability(Box::new(DiurnalAvailability {
        base: 0.6,
        amplitude: 0.35,
        period: 8,
        cohorts: 3,
        seed: 5,
    }))
    .set_latency(Box::new(LogNormalLatency {
        median: 5.0,
        client_sigma: 0.4,
        round_sigma: 0.2,
        seed: 9,
    }))
    .set_fault_model(Box::new(RandomFaults {
        crash_rate: 0.10,
        corrupt_param_rate: 0.05,
        straggler_rate: 0.10,
        straggler_factor: 8.0,
        ..Default::default()
    }))
    .set_fault_policy(FaultPolicy {
        deadline: Some(20.0),
        min_quorum: 2,
        max_param_norm: None,
    });
    println!("client executor: {} (override with FEDCAV_EXECUTOR)", sim.executor());

    // Profile the run: structured span events + op-level kernel counters.
    // Tracing only observes — results are identical with or without it.
    let tracer = Arc::new(CollectingTracer::new());
    sim.set_tracer(tracer.clone());
    fedcav::tensor::counters::enable();

    println!("\nround\tsampled\tdropped\tquarantined\ttimed-out\taccuracy");
    for round in 1..=12 {
        let r = sim.run_round()?;
        let degraded = if r.faults.degraded { "  [DEGRADED: model held]" } else { "" };
        println!(
            "{round}\t{}\t{}\t{}\t{}\t{:.3}{degraded}",
            r.participants,
            r.faults.dropped,
            r.faults.quarantined,
            r.faults.timed_out,
            r.test_accuracy
        );
    }
    let h = sim.history();
    println!(
        "\nfault totals: {} dropped, {} quarantined, {} timed out, degraded rounds {:?}",
        h.total_dropped(),
        h.total_quarantined(),
        h.total_timed_out(),
        h.degraded_rounds()
    );
    let comm = sim.comm_stats();
    println!(
        "traffic over {} rounds ({:.0} s simulated): {:.2} MiB down, {:.2} MiB up",
        comm.rounds,
        sim.sim_time(),
        comm.total_down as f64 / (1024.0 * 1024.0),
        comm.total_up as f64 / (1024.0 * 1024.0)
    );

    println!("\nphase profile (wall time per round):");
    for r in &h.records {
        println!("  round {}\t{}", r.round + 1, r.phases.summary());
    }
    let totals = h.total_phase_timings();
    let (dominant, _) = totals.dominant();
    println!("  totals\t{} — dominant phase: {dominant}", totals.summary());
    println!("kernel work: {}", fedcav::tensor::counters::snapshot().summary());

    let trace_path = std::env::var("FEDCAV_TRACE_OUT")
        .unwrap_or_else(|_| "target/realistic_deployment.trace.jsonl".to_string());
    let events = tracer.take();
    export::write_jsonl(&trace_path, &events)?;
    println!("wrote {} trace events to {trace_path}", events.len());
    Ok(())
}
