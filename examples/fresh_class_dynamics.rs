//! The paper's motivating scenario (§1, "it is more important for G-board
//! to predict SOS precisely than street names"): a deployment has converged
//! on 7 classes when 3 *fresh* classes start appearing on clients. How fast
//! does each aggregation rule absorb the new knowledge?
//!
//! Reproduces a single cell of Fig. 4 (α = 0.3) at example scale.
//!
//! Run with: `cargo run --release --example fresh_class_dynamics`

use fedcav::core::{FedCav, FedCavConfig};
use fedcav::data::{partition, FreshClassSplit, ImbalanceSpec, SyntheticConfig, SyntheticKind};
use fedcav::fl::{
    CentralizedTrainer, FedAvg, FedProx, LocalConfig, Simulation, SimulationConfig, Strategy,
};
use fedcav::nn::models;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train, test) = SyntheticConfig::new(SyntheticKind::MnistLike, 40, 10).generate()?;
    let mut rng = StdRng::seed_from_u64(5);
    let split = FreshClassSplit::new(&train, 0.3, &mut rng)?;
    println!("fresh classes: {:?}", split.fresh_classes);

    let factory = || {
        let mut rng = StdRng::seed_from_u64(7);
        models::lenet5(&mut rng, 10)
    };
    let local = LocalConfig { epochs: 3, batch_size: 10, lr: 0.05, prox_mu: 0.0 };

    // Pre-train on the common classes only.
    let mut pre =
        CentralizedTrainer::new(&factory, split.common.clone(), test.clone(), local, 64, 9);
    pre.run(4)?;
    let pretrained = pre.global().to_vec();
    println!(
        "pre-trained on common classes: test accuracy {:.3} (fresh classes unseen)",
        pre.history().final_accuracy().unwrap()
    );

    // Federated phase over common + fresh data.
    let full = split.full()?;
    let part = partition::noniid(&full, 10, 2, ImbalanceSpec::Balanced, &mut rng);
    let config = SimulationConfig { sample_ratio: 0.5, local, eval_batch: 64, seed: 42 };

    let strategies: Vec<(&str, Box<dyn Strategy>)> = vec![
        ("FedCav", Box::new(FedCav::new(FedCavConfig::default()))),
        ("FedAvg", Box::new(FedAvg::new())),
        ("FedProx", Box::new(FedProx::new(0.01))),
    ];
    println!("\nround\tFedCav\tFedAvg\tFedProx");
    let mut sims: Vec<Simulation> = strategies
        .into_iter()
        .map(|(_, s)| {
            let mut sim = Simulation::new(
                &factory,
                part.client_datasets(&full).expect("partition"),
                test.clone(),
                s,
                config,
            );
            sim.set_global(pretrained.clone()).expect("same architecture");
            sim
        })
        .collect();
    for round in 1..=12 {
        let accs: Vec<f32> =
            sims.iter_mut().map(|s| s.run_round().expect("round").test_accuracy).collect();
        println!("{round}\t{:.3}\t{:.3}\t{:.3}", accs[0], accs[1], accs[2]);
    }
    Ok(())
}
