//! Quickstart: a 10-round federated run comparing FedCav against FedAvg on
//! non-IID, class-imbalanced synthetic MNIST-like data.
//!
//! Run with: `cargo run --release --example quickstart`

use fedcav::core::{FedCav, FedCavConfig};
use fedcav::data::{partition, ImbalanceSpec, SyntheticConfig, SyntheticKind};
use fedcav::fl::{FedAvg, LocalConfig, Simulation, SimulationConfig};
use fedcav::nn::models;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthetic MNIST-like data: 10 classes, 40 train / 10 test per class.
    let (train, test) = SyntheticConfig::new(SyntheticKind::MnistLike, 40, 10).generate()?;
    println!("dataset: {} train / {} test samples", train.len(), test.len());

    // 2. Partition across 10 clients, 2 classes each, imbalanced (σ=600).
    let mut rng = StdRng::seed_from_u64(1);
    let part = partition::noniid(&train, 10, 2, ImbalanceSpec::PaperSigma(600.0), &mut rng);
    println!("client sizes: {:?}", part.sizes());

    // 3. A model factory: every client trains its own LeNet-5 instance.
    let factory = || {
        let mut rng = StdRng::seed_from_u64(7);
        models::lenet5(&mut rng, 10)
    };

    // 4. Run both strategies from identical initial conditions.
    let config = SimulationConfig {
        sample_ratio: 0.5,
        local: LocalConfig { epochs: 3, batch_size: 10, lr: 0.05, prox_mu: 0.0 },
        eval_batch: 64,
        seed: 42,
    };
    println!("\nround\tFedAvg\tFedCav");
    let mut fedavg = Simulation::new(
        &factory,
        part.client_datasets(&train)?,
        test.clone(),
        Box::new(FedAvg::new()),
        config,
    );
    let mut fedcav = Simulation::new(
        &factory,
        part.client_datasets(&train)?,
        test,
        Box::new(FedCav::new(FedCavConfig::default())),
        config,
    );
    for round in 1..=10 {
        let a = fedavg.run_round()?;
        let c = fedcav.run_round()?;
        println!("{round}\t{:.3}\t{:.3}", a.test_accuracy, c.test_accuracy);
    }
    println!(
        "\nconverged (last 3 rounds): FedAvg {:.3}, FedCav {:.3}",
        fedavg.history().converged_accuracy(3).unwrap(),
        fedcav.history().converged_accuracy(3).unwrap()
    );
    Ok(())
}
