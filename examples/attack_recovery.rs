//! Model-replacement attack and FedCav's detection + reverse (§4.4).
//!
//! An adversary trains a malicious model on label-flipped data, boosts it
//! per Eq. 11 and hijacks one round. With detection off the global model is
//! destroyed and crawls back; with detection on, the majority vote fires on
//! the next round's inference losses and the server reverses to the cached
//! model.
//!
//! Run with: `cargo run --release --example attack_recovery`

use fedcav::attack::{ModelReplacement, ModelReplacementConfig};
use fedcav::core::{FedCav, FedCavConfig};
use fedcav::data::poison::flip_all_labels;
use fedcav::data::{partition, ImbalanceSpec, SyntheticConfig, SyntheticKind};
use fedcav::fl::{LocalConfig, Simulation, SimulationConfig};
use fedcav::nn::models;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train, test) = SyntheticConfig::new(SyntheticKind::MnistLike, 40, 10).generate()?;
    let mut rng = StdRng::seed_from_u64(3);
    let part = partition::noniid(&train, 10, 2, ImbalanceSpec::Balanced, &mut rng);
    let clients = part.client_datasets(&train)?;

    let factory = || {
        let mut rng = StdRng::seed_from_u64(7);
        models::lenet5(&mut rng, 10)
    };
    let local = LocalConfig { epochs: 3, batch_size: 10, lr: 0.05, prox_mu: 0.0 };
    let config = SimulationConfig { sample_ratio: 0.5, local, eval_batch: 64, seed: 42 };
    let attack_round = 3;

    println!("attack at round {}\n", attack_round + 1);
    println!("round\tno-detection\twith-detection\tnote");

    let run = |detect: bool| -> Result<Vec<(f32, bool)>, Box<dyn std::error::Error>> {
        let strategy = if detect {
            FedCav::new(FedCavConfig::default())
        } else {
            FedCav::new(FedCavConfig::without_detection())
        };
        let mut sim =
            Simulation::new(&factory, clients.clone(), test.clone(), Box::new(strategy), config);
        let adversary = ModelReplacement::new(
            &factory,
            flip_all_labels(&clients[0]),
            ModelReplacementConfig {
                attack_rounds: vec![attack_round],
                boost: None,
                reported_loss: 5.0,
                local,
                seed: 0xBAD,
            },
        );
        sim.set_interceptor(Box::new(adversary));
        let mut out = Vec::new();
        for _ in 0..9 {
            let r = sim.run_round()?;
            out.push((r.test_accuracy, r.rejected));
        }
        Ok(out)
    };

    let naked = run(false)?;
    let guarded = run(true)?;
    for (i, ((a, _), (b, reversed))) in naked.iter().zip(&guarded).enumerate() {
        let mut note = String::new();
        if i == attack_round {
            note.push_str("<- attack");
        }
        if *reversed {
            note.push_str(" [REVERSED]");
        }
        println!("{}\t{a:.3}\t{b:.3}\t{note}", i + 1);
    }
    Ok(())
}
